#include "hylo/core/trainer.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "hylo/audit/audit.hpp"
#include "hylo/optim/hylo_optimizer.hpp"
#include "hylo/optim/kfac.hpp"
#include "hylo/optim/sngd.hpp"
#include "hylo/par/thread_pool.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

namespace {
/// The trainer's verbose flag doubles as the run log's echo switch.
obs::RunLogConfig telemetry_config(const TrainConfig& cfg) {
  obs::RunLogConfig rc = cfg.telemetry;
  rc.echo = rc.echo || cfg.verbose;
  return rc;
}

/// Thrown by initiate_rollback to unwind run_epoch back to run_from, which
/// owns the restore + ladder application. Never escapes run_from.
struct RollbackSignal {
  RecoveryAction action;
  std::string target;
};
}  // namespace

real_t TrainResult::best_metric() const {
  real_t best = 0.0;
  for (const auto& e : epochs) best = std::max(best, e.test_metric);
  return best;
}

Trainer::Trainer(Network& net, Optimizer& opt, const DataSplit& data,
                 TrainConfig cfg)
    : net_(&net), opt_(&opt), data_(&data), cfg_(cfg),
      comm_(cfg.world, cfg.interconnect), runlog_(telemetry_config(cfg)),
      segmentation_(data.train.is_segmentation()), world_(cfg.world) {
  HYLO_CHECK(cfg_.world >= 1 && cfg_.epochs >= 1 && cfg_.batch_size >= 1,
             "bad train config");
  comm_.set_wire_scalar_bytes(cfg_.wire_scalar_bytes);
  // Comm execution mode: explicit config pins it; the HYLO_COMM environment
  // applies only when the config leaves it unset. Default stays lockstep.
  if (cfg_.comm_mode.has_value()) {
    comm_.set_mode(*cfg_.comm_mode);
  } else if (const auto env = comm_mode_from_env(); env.has_value()) {
    comm_.set_mode(*env);
  }
  // Explicit config pins the fault schedule; the HYLO_FAULTS environment
  // spec applies only when the config leaves it open.
  if (cfg_.faults.has_value()) {
    comm_.configure_faults(*cfg_.faults);
  } else if (const auto env = FaultConfig::from_env(); env.has_value()) {
    comm_.configure_faults(*env);
  }
  // Same precedence for snapshots: a non-empty checkpoint dir in the config
  // pins the cadence (every == 0 then pins checkpointing off); HYLO_CKPT_*
  // applies only when the config leaves the dir empty.
  if (!cfg_.checkpoint.dir.empty()) {
    ckpt_ = cfg_.checkpoint;
  } else if (const auto env = ckpt::CkptConfig::from_env(); env.has_value()) {
    ckpt_ = *env;
  }
  // Rollback self-healing: an explicit config pins the policy (enabled ==
  // false pins off); the HYLO_RECOVER spec applies only when unset.
  {
    RecoveryConfig rc;
    if (cfg_.recovery.has_value()) {
      rc = *cfg_.recovery;
    } else if (const auto env = RecoveryConfig::from_env(); env.has_value()) {
      rc = *env;
    }
    HYLO_CHECK(!rc.enabled || ckpt_.enabled(),
               "recovery needs a checkpoint cadence to roll back to — set "
               "TrainConfig::checkpoint (dir + every) or HYLO_CKPT_DIR / "
               "HYLO_CKPT_EVERY alongside HYLO_RECOVER");
    recovery_ = RecoveryPolicy(rc);
  }
  // And for health probes: an explicit config pins them (enabled == false
  // pins off); the HYLO_HEALTH cadence applies only when unset.
  {
    obs::HealthConfig hc;
    if (cfg_.health.has_value()) {
      hc = *cfg_.health;
    } else if (const auto env = obs::HealthConfig::from_env();
               env.has_value()) {
      hc = *env;
    }
    health_ = obs::HealthMonitor(hc);
    alerts_ = obs::AlertEngine(hc.alerts);
    curv_ = dynamic_cast<CurvatureOptimizer*>(opt_);
    uses_capture_ = curv_ != nullptr;
    if (hc.enabled) {
      std::string method = opt_->name();
      for (char& c : method)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      health_.set_method(std::move(method));
      health_.attach(&comm_.profiler().registry(), &runlog_);
      alerts_.attach(&comm_.profiler().registry(), &runlog_);
      opt_->set_health(&health_);
    }
  }
  loaders_.reserve(static_cast<std::size_t>(cfg_.world));
  for (index_t r = 0; r < cfg_.world; ++r)
    loaders_.emplace_back(data.train, cfg_.batch_size, cfg_.data_seed, r,
                          cfg_.world);
  if (runlog_.enabled()) {
    runlog_.attach_metrics(&comm_.profiler().registry());
    comm_.set_trace(&runlog_.trace());
    for (index_t r = 0; r < cfg_.world; ++r)
      runlog_.trace().set_track_name(static_cast<int>(r),
                                     "rank " + std::to_string(r));
    runlog_.trace().set_track_name(obs::TraceBuffer::kCommTrack,
                                   "interconnect");
    obs::Json start = obs::Json::object();
    start.set("optimizer", opt_->name());
    start.set("world", cfg_.world);
    start.set("epochs", cfg_.epochs);
    start.set("batch_size", cfg_.batch_size);
    start.set("lr", opt_->lr());
    start.set("wire_scalar_bytes", cfg_.wire_scalar_bytes);
    start.set("interconnect", cfg_.interconnect.name);
    if (comm_.async()) {
      start.set("comm_mode", "async");
      start.set("compute_model", cfg_.compute.name);
    }
    start.set("params", net_->num_params());
    start.set("segmentation", segmentation_);
    if (comm_.faults_active()) {
      const FaultConfig& fc = comm_.fault_plan()->config();
      obs::Json faults = obs::Json::object();
      faults.set("seed", static_cast<std::int64_t>(fc.seed));
      faults.set("rate", fc.rate);
      faults.set("timeout_weight", fc.timeout_weight);
      faults.set("straggler_weight", fc.straggler_weight);
      faults.set("corrupt_weight", fc.corrupt_weight);
      faults.set("rank_down_weight", fc.rank_down_weight);
      faults.set("rank_lost_weight", fc.rank_lost_weight);
      // Silent-corruption fields appear only when the mix carries them, so
      // pre-existing fault specs keep their exact run_start record.
      if (fc.silent_weight > 0.0) {
        faults.set("silent_weight", fc.silent_weight);
        faults.set("sdc_escape", fc.sdc_escape);
      }
      start.set("faults", std::move(faults));
    }
    if (recovery_.enabled()) {
      const RecoveryConfig& rc = recovery_.config();
      obs::Json rec = obs::Json::object();
      rec.set("max_rollbacks", rc.max_rollbacks);
      rec.set("first_order_iters", rc.first_order_iters);
      rec.set("lr_backoff", rc.lr_backoff);
      start.set("recovery", std::move(rec));
    }
    // A resumed run appends to the interrupted run's log: the original
    // run_start already opens it, resume() records the continuation point.
    if (!cfg_.telemetry.append) runlog_.record("run_start", std::move(start));
  }
}

std::pair<real_t, real_t> Trainer::evaluate() {
  const PassContext ctx{.training = false, .capture = false};
  const Dataset& test = data_->test;
  const index_t n = test.size();
  HYLO_CHECK(n > 0, "evaluate() needs a non-empty test split — training with "
                    "no held-out data would divide by zero here; trim epochs "
                    "or provide a test set");
  const index_t chunk = 256;
  real_t loss_sum = 0.0, metric_sum = 0.0;
  index_t covered = 0;
  for (index_t start = 0; start < n; start += chunk) {
    const index_t cnt = std::min(chunk, n - start);
    Tensor4 x(cnt, test.images.c(), test.images.h(), test.images.w());
    std::copy(test.images.sample_ptr(start),
              test.images.sample_ptr(start) + cnt * test.images.sample_size(),
              x.data());
    const Tensor4& out = net_->forward(x, ctx);
    if (segmentation_) {
      Tensor4 mask(cnt, 1, test.masks.h(), test.masks.w());
      std::copy(test.masks.sample_ptr(start),
                test.masks.sample_ptr(start) + cnt * test.masks.sample_size(),
                mask.data());
      const auto [l, m] = dice_.evaluate(out, mask);
      loss_sum += l * static_cast<real_t>(cnt);
      metric_sum += m * static_cast<real_t>(cnt);
    } else {
      std::vector<int> labels(test.labels.begin() + start,
                              test.labels.begin() + start + cnt);
      const auto [l, m] = ce_.evaluate(out, labels);
      loss_sum += l * static_cast<real_t>(cnt);
      metric_sum += m * static_cast<real_t>(cnt);
    }
    covered += cnt;
  }
  return {loss_sum / static_cast<real_t>(covered),
          metric_sum / static_cast<real_t>(covered)};
}

void Trainer::run_epoch(index_t epoch, TrainResult& result) {
  // A resumed epoch picks up mid-stream: the snapshot's in-progress
  // accumulators seed the epoch sums and the loaders fast-forward past the
  // already-consumed batches (the permutation is a pure function of
  // seed + epoch, so skip() lands exactly on the interrupted cursor).
  index_t start_iter = 0;
  real_t loss_acc = 0.0, metric_acc = 0.0;
  index_t rank_batches = 0;
  if (resumed_ && epoch == start_epoch_) {
    start_iter = start_iter_;
    loss_acc = resume_loss_acc_;
    metric_acc = resume_metric_acc_;
    rank_batches = resume_rank_batches_;
  }
  for (auto& loader : loaders_) loader.start_epoch(epoch);
  index_t iters = loaders_.front().batches_per_epoch();
  if (cfg_.max_iters_per_epoch >= 0)
    iters = std::min(iters, cfg_.max_iters_per_epoch);
  HYLO_CHECK(iters > 0, "epoch with zero iterations — dataset too small for "
                        "world*batch");
  HYLO_CHECK(start_iter <= iters,
             "snapshot resumes at iteration " << start_iter
                                              << " of an epoch with " << iters);
  if (start_iter > 0)
    for (auto& loader : loaders_) loader.skip(start_iter);

  auto blocks = net_->param_blocks();
  const index_t layer_count = static_cast<index_t>(blocks.size());
  index_t grad_scalars = 0;
  for (auto* pb : blocks) grad_scalars += pb->gw.size();
  for (auto pp : net_->plain_params())
    grad_scalars += static_cast<index_t>(pp.grad->size());

  Batch batch;
  obs::TraceBuffer* trace = runlog_.enabled() ? &runlog_.trace() : nullptr;
  auto* hy = dynamic_cast<HyloOptimizer*>(opt_);
  // Hoisted flags: with no fault plan, no checkpoint cadence, and no health
  // probes these stay false for the whole run and the loop takes no
  // snapshot/elastic/probe work — such runs stay byte-identical to a build
  // without any of the three subsystems.
  const bool elastic = comm_.faults_active();
  const bool snapshots = ckpt_.enabled();
  const bool health_on = health_.enabled();
  const bool recovering = recovery_.enabled();
  // Async timeline: each rank's simulated clock advances by *modeled*
  // fwd/bwd compute (never measured wall time — replays stay bitwise), so
  // curvature gathers issued at refresh t genuinely overlap the compute of
  // iterations t+1..t+f-1.
  const bool async_mode = comm_.async();
  const double modeled_step_s =
      async_mode ? compute_seconds(cfg_.compute,
                                   train_step_flops(net_->num_params(),
                                                    cfg_.batch_size))
                 : 0.0;

  for (index_t it = start_iter; it < iters; ++it) {
    const bool capture = opt_->needs_capture(global_iter_);
    // A probe opportunity is a curvature refresh — or, for first-order
    // methods (which never capture), every iteration; the monitor's cadence
    // then thins these to actual probes.
    if (health_on && (capture || !uses_capture_)) health_.begin_refresh();
    const PassContext ctx{.training = true, .capture = capture};
    net_->zero_grad();

    CaptureSet cap;
    if (capture) {
      cap.a.resize(static_cast<std::size_t>(layer_count));
      cap.g.resize(static_cast<std::size_t>(layer_count));
    }

    real_t iter_loss = 0.0, iter_metric = 0.0;
    WallTimer fb_timer;
    for (index_t rank = 0; rank < world_; ++rank) {
      WallTimer rank_timer;
      HYLO_CHECK(loaders_[static_cast<std::size_t>(rank)].next(batch),
                 "loader exhausted mid-epoch");
      const Tensor4& out = net_->forward(batch.images, ctx);
      LossResult lr = segmentation_ ? dice_.compute(out, batch.masks)
                                    : ce_.compute(out, batch.labels);
      iter_loss += lr.loss;
      iter_metric += lr.metric;
      net_->backward(lr.grad, ctx);
      if (capture) {
        for (index_t l = 0; l < layer_count; ++l) {
          cap.a[static_cast<std::size_t>(l)].push_back(
              std::move(blocks[static_cast<std::size_t>(l)]->a_samples));
          cap.g[static_cast<std::size_t>(l)].push_back(
              std::move(blocks[static_cast<std::size_t>(l)]->g_samples));
        }
      }
      if (trace != nullptr)
        trace->add_span("fwd_bwd", "comp", static_cast<int>(rank),
                        rank_timer.seconds(),
                        obs::Json::object().set("iter", global_iter_));
    }
    loss_acc += iter_loss;
    metric_acc += iter_metric;
    rank_batches += world_;
    // Non-finite-loss trigger, checked *before* the optimizer consumes this
    // iteration's gradients: a NaN loss means the captures and gradients are
    // poisoned too, and the curvature machinery would fail loudly (Cholesky
    // escalation) on them rather than degrade. Unwind for a rollback first.
    if (recovering && !std::isfinite(iter_loss))
      initiate_rollback(epoch, it, "non_finite_loss");
    // Average gradients over workers (the allreduce's arithmetic effect —
    // each backward already used its local-batch mean). Weighted over the
    // *surviving* ranks: after a world shrink the mean reweights itself.
    const real_t inv_world = 1.0 / static_cast<real_t>(world_);
    if (world_ > 1) {
      for (auto* pb : blocks) pb->gw *= inv_world;
      for (auto pp : net_->plain_params())
        for (auto& g : *pp.grad) g *= inv_world;
    }
    comm_.profiler().add("comp/forward_backward", fb_timer.seconds());
    if (async_mode)
      for (index_t rank = 0; rank < world_; ++rank)
        comm_.timeline()->advance(rank, modeled_step_s);
    // The gradient allreduce must complete for the replicas to stay
    // bit-identical: injected rank_down faults re-form and retry.
    comm_.charge_allreduce(comm_.wire_bytes(grad_scalars),
                           "comm/grad_allreduce",
                           FailMode::kRetryUntilSuccess);
    // Commit every curvature chain that completed while this iteration's
    // compute ran — *before* a refresh would declare the stragglers stale.
    if (async_mode && curv_ != nullptr) curv_->poll_async(comm_);

    double step_s = 0.0;
    try {
      if (capture) opt_->update_curvature(blocks, cap, &comm_);

      opt_->accumulate_gradient(blocks);
      WallTimer step_timer;
      opt_->step(*net_, global_iter_);
      step_s = step_timer.seconds();
    } catch (const Error&) {
      // A numeric abort inside the optimizer (e.g. a Cholesky that stays
      // indefinite after damping escalation, fed by corruption the sanity
      // gates cannot see) is a critical trigger too: roll back instead of
      // dying, and let the rung-2 first-order window route the re-run
      // around the crashing refresh. Without recovery armed the abort
      // stays loud, exactly as before.
      if (!recovering) throw;
      initiate_rollback(epoch, it, "optimizer_abort");
    }
    comm_.profiler().add("comp/step", step_s);
    if (trace != nullptr)
      for (index_t rank = 0; rank < world_; ++rank)
        trace->add_span("step", "comp", static_cast<int>(rank), step_s);

    if (runlog_.per_step()) {
      obs::Json rec = obs::Json::object();
      rec.set("epoch", epoch);
      rec.set("iter", it);
      rec.set("global_iter", global_iter_);
      rec.set("loss", iter_loss / static_cast<real_t>(world_));
      rec.set("metric", iter_metric / static_cast<real_t>(world_));
      rec.set("lr", opt_->lr());
      rec.set("capture", capture);
      if (hy != nullptr) {
        rec.set("mode", to_string(hy->mode()));
        if (capture) rec.set("rank_r", hy->last_rank());
      }
      runlog_.record("step", std::move(rec));
    }
    if (health_on && health_.due()) {
      // Trainer-side non-finite scan: live weights and the gradients the
      // step just consumed (probes are observers — nothing is modified).
      index_t nan_w = 0, nan_g = 0;
      for (auto* pb : blocks) {
        nan_w += obs::count_nonfinite(pb->w);
        nan_g += obs::count_nonfinite(pb->gw);
      }
      for (auto pp : net_->plain_params()) {
        nan_w += obs::count_nonfinite(*pp.value);
        nan_g += obs::count_nonfinite(*pp.grad);
      }
      health_.report_nonfinite(nan_w, nan_g);
      health_.flush(epoch, it, global_iter_);
      alerts_.on_probe(epoch, global_iter_, health_.last_nonfinite(),
                       health_.last_max_cond(),
                       health_.last_max_staleness());
    }
    if (recovering) {
      // Critical-alert trigger, checked before the iteration commits to a
      // snapshot (the non-finite-loss trigger already fired above, before
      // the step): a new critical health alert unwinds to run_from for a
      // rollback — so any snapshot actually written below comes from an
      // iteration that passed both checks.
      const bool fresh_crit = alerts_.critical_count() > last_crit_seen_;
      last_crit_seen_ = alerts_.critical_count();
      if (fresh_crit) initiate_rollback(epoch, it, "critical_alert");
    }
    ++global_iter_;
    // Rung-2 window: resume serving curvature once it expires.
    if (first_order_left_ > 0 && --first_order_left_ == 0 && curv_ != nullptr)
      curv_->set_first_order(false);
    // Iteration boundary: permanent rank deaths recorded mid-iteration are
    // committed here, so every collective of one iteration saw one world.
    if (elastic && comm_.has_pending_shrinks()) apply_world_shrink(epoch, it + 1);
    if (snapshots && global_iter_ % ckpt_.every == 0) {
      const std::string path =
          write_snapshot(epoch, it + 1, loss_acc, metric_acc, rank_batches);
      // Verified-good pinning: the trigger checks above passed and the
      // weights scan clean, so this snapshot is a safe rollback target.
      if (recovering && weights_finite()) {
        last_good_path_ = path;
        recovery_.note_progress();
      }
    }
  }
  result.iterations += iters - start_iter;

  // Simulated wall-time bookkeeping: convert profiler totals accumulated so
  // far into the three contributions (delta since last epoch is implicit in
  // recomputing from totals).
  const auto& prof = comm_.profiler();
  // Inversion is distributed layer-wise: its wall time is total/P until the
  // largest single layer (the summed per-refresh critical path) dominates.
  const double world = static_cast<double>(world_);
  const double inv_wall =
      std::max(prof.seconds("comp/inversion") / world,
               prof.seconds("comp/inversion_critical"));
  const double par = prof.seconds("comp/forward_backward") / world +
                     prof.seconds("comp/factorization") / world + inv_wall;
  const double rep = prof.seconds("comp/step");
  double comm = 0.0;
  for (const auto& [name, entry] : prof.sections())
    if (name.rfind("comm/", 0) == 0) comm += entry.seconds;
  comp_par_seconds_ = par;
  comp_rep_seconds_ = rep;
  comm_seconds_ = comm;
  // Lockstep: compute and comm serialize, so wall is their sum. Async: the
  // event timeline already interleaved them — wall is its horizon (the last
  // clock or in-flight wire completion), which is what overlap buys.
  wall_seconds_ = async_mode
                      ? comm_.timeline()->horizon() + comp_rep_seconds_
                      : comp_par_seconds_ + comp_rep_seconds_ + comm_seconds_;

  const auto [test_loss, test_metric] = evaluate();
  EpochStats stats;
  stats.epoch = epoch;
  // rank_batches counts the local batches actually consumed — iters * world
  // while the world is static, and the exact mixed-world sum after an
  // elastic shrink mid-epoch.
  const real_t denom = static_cast<real_t>(rank_batches);
  stats.train_loss = loss_acc / denom;
  stats.train_metric = metric_acc / denom;
  stats.test_loss = test_loss;
  stats.test_metric = test_metric;
  stats.wall_seconds = wall_seconds_;
  // Uniform note: HyLo reports its per-epoch KID/KIS mode, every other
  // optimizer its name — so EpochStats carries the method tag regardless of
  // which optimizer ran.
  stats.note = hy != nullptr ? to_string(hy->mode()) : opt_->name();
  if (cfg_.verbose || runlog_.enabled()) {
    std::ostringstream line;
    line << "[" << opt_->name() << "] epoch " << epoch << " loss "
         << stats.train_loss << " train " << stats.train_metric << " test "
         << stats.test_metric << " t=" << stats.wall_seconds << "s"
         << (stats.note == opt_->name() ? "" : " (" + stats.note + ")");
    runlog_.console(line.str());
  }
  log_epoch(stats, epoch);
  if (health_.enabled()) {
    const std::int64_t faults =
        comm_.profiler().registry().counter_value("comm/faults/injected");
    alerts_.on_epoch(epoch, global_iter_, stats.train_loss, stats.note,
                     faults - last_alert_faults_);
    last_alert_faults_ = faults;
  }
  // Epoch-boundary triggers (loss_divergence fires here, and a non-finite
  // epoch mean catches blow-ups the per-iteration check may have missed on
  // the probe-free epochs of a resumed run).
  if (recovery_.enabled()) {
    const char* why = nullptr;
    if (!std::isfinite(stats.train_loss)) {
      why = "non_finite_loss";
    } else if (alerts_.critical_count() > last_crit_seen_) {
      why = "critical_alert";
    }
    last_crit_seen_ = alerts_.critical_count();
    if (why != nullptr) initiate_rollback(epoch, iters, why);
  }
  if (hook_) hook_(stats, *net_);
  result.epochs.push_back(stats);
}

obs::Json Trainer::collective_deltas() {
  // Snapshot-and-subtract so each epoch record carries only its own
  // collective traffic, not the cumulative totals.
  obs::Json out = obs::Json::object();
  const auto& reg = comm_.profiler().registry();
  for (const auto& [name, entry] : comm_.profiler().sections()) {
    if (name.rfind("comm/", 0) != 0) continue;
    const std::int64_t bytes = reg.counter_value(name + ".bytes");
    const std::int64_t msgs = reg.counter_value(name + ".msgs");
    obs::Json c = obs::Json::object();
    c.set("calls", msgs - last_comm_counters_[name + ".msgs"]);
    c.set("bytes", bytes - last_comm_counters_[name + ".bytes"]);
    c.set("modeled_seconds", entry.seconds - last_comm_seconds_[name]);
    last_comm_counters_[name + ".msgs"] = msgs;
    last_comm_counters_[name + ".bytes"] = bytes;
    last_comm_seconds_[name] = entry.seconds;
    out.set(name, std::move(c));
  }
  return out;
}

obs::Json Trainer::fault_deltas(std::int64_t* stale) {
  obs::Json out = obs::Json::object();
  *stale = 0;
  const std::string stale_suffix = "/stale_refreshes";
  for (const auto& [name, c] : comm_.profiler().registry().counters()) {
    const bool is_fault = name.rfind("comm/faults/", 0) == 0;
    const bool is_stale =
        name.rfind("optim/", 0) == 0 && name.size() > stale_suffix.size() &&
        name.compare(name.size() - stale_suffix.size(), stale_suffix.size(),
                     stale_suffix) == 0;
    if (!is_fault && !is_stale) continue;
    const std::int64_t delta = c.value() - last_fault_counters_[name];
    last_fault_counters_[name] = c.value();
    if (is_fault) out.set(name.substr(12), delta);  // strip "comm/faults/"
    if (is_stale) *stale += delta;
  }
  return out;
}

void Trainer::log_epoch(const EpochStats& stats, index_t epoch) {
  if (!runlog_.enabled()) return;
  obs::Json rec = obs::Json::object();
  rec.set("epoch", epoch);
  rec.set("train_loss", stats.train_loss);
  rec.set("train_metric", stats.train_metric);
  rec.set("test_loss", stats.test_loss);
  rec.set("test_metric", stats.test_metric);
  rec.set("lr", opt_->lr());
  rec.set("mode", stats.note);
  // Simulated-time breakdown: measured compute (under the parallelism
  // rule), measured replicated compute, and modeled wire seconds.
  obs::Json time = obs::Json::object();
  time.set("wall", stats.wall_seconds);
  time.set("compute_parallel", comp_par_seconds_);
  time.set("replicated", comp_rep_seconds_);
  time.set("comm_modeled", comm_seconds_);
  rec.set("time", std::move(time));
  rec.set("collectives", collective_deltas());
  // Degradation accounting, present only when fault injection is active so
  // fault-free run logs stay byte-identical to a build without it.
  if (comm_.faults_active()) {
    std::int64_t stale = 0;
    rec.set("faults", fault_deltas(&stale));
    rec.set("stale_refreshes", stale);
    rec.set("world", world_);
  }
  if (auto* hy = dynamic_cast<HyloOptimizer*>(opt_); hy != nullptr) {
    rec.set("rank_r", hy->last_rank());
    const SwitchDecision& dec = hy->last_switch();
    obs::Json sw = obs::Json::object();
    sw.set("R", dec.ratio);
    sw.set("threshold", dec.threshold);
    sw.set("exceeded", dec.ratio >= 0.0 && dec.ratio >= dec.threshold);
    sw.set("lr_decayed", dec.lr_decayed);
    sw.set("critical", dec.critical);
    sw.set("reason", dec.reason);
    rec.set("switching", std::move(sw));
    runlog_.trace().add_instant("mode:" + stats.note, "train",
                                obs::TraceBuffer::kCommTrack,
                                obs::Json::object().set("epoch", epoch));
  }
  runlog_.record("epoch", std::move(rec));
}

TrainResult Trainer::run() { return run_from(); }

TrainResult Trainer::resume(const std::string& path) {
  HYLO_CHECK(!resumed_, "Trainer::resume may be called once per Trainer");
  restore_snapshot(path);
  return run_from();
}

TrainResult Trainer::run_from() {
  TrainResult result;
  // A resumed run's result carries the cumulative iteration count so its
  // final record matches the uninterrupted run's.
  if (resumed_) result.iterations = global_iter_;
  for (index_t epoch = resumed_ ? start_epoch_ : 0; epoch < cfg_.epochs;
       ++epoch) {
    // The resume epoch's lr decay and begin_epoch already ran before the
    // snapshot was cut (snapshots land after >= 1 iteration of the epoch);
    // the optimizer state section carries their effects.
    if (!(resumed_ && epoch == start_epoch_)) {
      const bool decayed = epoch > 0 && cfg_.lr_schedule.decays_at(epoch);
      if (decayed) opt_->set_lr(opt_->lr() * cfg_.lr_schedule.gamma);
      opt_->begin_epoch(epoch, decayed);
    }
    // Recovery needs a rollback target before the first cadenced snapshot
    // lands: pin the freshly initialized state (written after
    // begin_epoch(0), whose effects live in the optimizer section).
    if (recovery_.enabled() && epoch == 0 && !resumed_ &&
        last_good_path_.empty())
      last_good_path_ = write_snapshot(0, 0, 0.0, 0.0, 0);
    try {
      run_epoch(epoch, result);
    } catch (const RollbackSignal& rb) {
      const index_t before = global_iter_;
      rollback_restore(rb.target);
      comm_.profiler().registry().counter("recover/rerun_iters")
          .inc(before - global_iter_);
      // Apply the ladder *after* the restore — load_state just rewound the
      // optimizer (including its lr) to the snapshot's values.
      if (rb.action.first_order && curv_ != nullptr) {
        curv_->set_first_order(true);
        first_order_left_ = recovery_.config().first_order_iters;
      }
      if (rb.action.reduce_lr)
        opt_->set_lr(opt_->lr() * recovery_.config().lr_backoff);
      // Drop stats from the window being re-run; the re-run re-records
      // them. Iterations reset to the cumulative count as of the snapshot,
      // exactly as a resume would.
      while (!result.epochs.empty() &&
             result.epochs.back().epoch >= start_epoch_)
        result.epochs.pop_back();
      result.iterations = global_iter_;
      epoch = start_epoch_ - 1;  // loop increment re-enters at start_epoch_
      continue;
    }
    const EpochStats& last = result.epochs.back();
    if (cfg_.target_metric > 0.0 && !result.time_to_target &&
        last.test_metric >= cfg_.target_metric) {
      result.time_to_target = last.wall_seconds;
      result.epochs_to_target = epoch + 1;
      break;  // time-to-convergence experiments stop at target
    }
  }
  result.total_seconds = wall_seconds_;
  result.compute_seconds = comp_par_seconds_;
  result.replicated_seconds = comp_rep_seconds_;
  result.comm_seconds = comm_seconds_;
  result.alerts_fired = static_cast<index_t>(alerts_.fired().size());
  result.critical_alerts = alerts_.critical_count();
  result.rollbacks = recovery_.rollbacks();
  if (recovery_.enabled() && runlog_.enabled()) {
    // Post-run recovery rollup, mirroring health_summary: how much of the
    // retry budget the run consumed and where it would roll back to now.
    const auto& reg = comm_.profiler().registry();
    obs::Json rec = obs::Json::object();
    rec.set("rollbacks", recovery_.rollbacks());
    rec.set("budget", recovery_.config().max_rollbacks);
    rec.set("rerun_iters", reg.counter_value("recover/rerun_iters"));
    std::int64_t rejects = 0;
    const std::string suffix = "/guard_rejects";
    for (const auto& [name, c] : reg.counters())
      if (name.rfind("optim/", 0) == 0 && name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0)
        rejects += c.value();
    rec.set("guard_rejects", rejects);
    rec.set("last_good", last_good_path_);
    runlog_.record("recovery_summary", std::move(rec));
  }
  if (health_.enabled()) {
    // Post-run rollup: one "health_summary" record plus a console line, so
    // a run's verdict is readable without replaying every probe record.
    if (runlog_.enabled()) {
      obs::Json rec = obs::Json::object();
      rec.set("probes", health_.probes());
      rec.set("worst_cond", health_.worst_cond());
      rec.set("total_nonfinite", health_.total_nonfinite());
      rec.set("alerts_fired", result.alerts_fired);
      rec.set("critical_alerts", result.critical_alerts);
      obs::Json rules = obs::Json::object();
      for (const char* rule : obs::kAlertCatalogue) {
        index_t n = 0;
        for (const auto& a : alerts_.fired())
          if (a.rule == rule) ++n;
        if (n > 0) rules.set(rule, n);
      }
      rec.set("by_rule", std::move(rules));
      runlog_.record("health_summary", std::move(rec));
    }
    runlog_.console(alerts_.summary());
  }
  if (runlog_.enabled()) {
    // Fold the thread-pool's cumulative fan-out stats and the write-set
    // auditor's counters into the registry so the run log's final metrics
    // snapshot carries them.
    par::export_metrics(comm_.profiler().registry());
    audit::export_metrics(comm_.profiler().registry());
    obs::Json rec = obs::Json::object();
    rec.set("epochs_run", static_cast<std::int64_t>(result.epochs.size()));
    rec.set("iterations", result.iterations);
    rec.set("best_metric", result.best_metric());
    rec.set("total_seconds", result.total_seconds);
    rec.set("compute_seconds", result.compute_seconds);
    rec.set("replicated_seconds", result.replicated_seconds);
    rec.set("comm_seconds", result.comm_seconds);
    rec.set("total_wire_bytes", comm_.total_wire_bytes());
    rec.set("total_messages", comm_.total_messages());
    if (comm_.faults_active()) {
      const auto& reg = comm_.profiler().registry();
      rec.set("faults_injected", reg.counter_value("comm/faults/injected"));
      rec.set("total_retry_bytes", comm_.total_retry_bytes());
      std::int64_t stale = 0;
      const std::string suffix = "/stale_refreshes";
      for (const auto& [name, c] : reg.counters())
        if (name.rfind("optim/", 0) == 0 && name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
                0)
          stale += c.value();
      rec.set("stale_refreshes", stale);
      rec.set("fault_plan_draws", comm_.fault_plan()->drawn());
      rec.set("world_shrinks",
              reg.counter_value("dist/elastic/world_shrinks"));
      rec.set("final_world", world_);
    }
    if (result.time_to_target) rec.set("time_to_target", *result.time_to_target);
    if (result.epochs_to_target)
      rec.set("epochs_to_target", *result.epochs_to_target);
    runlog_.record("result", std::move(rec));
    runlog_.finish();
  }
  return result;
}

std::string Trainer::write_snapshot(index_t epoch, index_t next_iter,
                                    real_t loss_acc, real_t metric_acc,
                                    index_t rank_batches) {
  WallTimer timer;
  ckpt::SnapshotWriter snap;

  // meta: enough to refuse a resume under a structurally different setup.
  ckpt::ByteWriter& meta = snap.section("meta");
  meta.str(opt_->name());
  meta.i64(cfg_.world);
  meta.i64(cfg_.batch_size);
  meta.i64(cfg_.epochs);  // informational: resume may extend the horizon
  meta.u64(cfg_.data_seed);
  meta.b(segmentation_);

  net_->serialize_state(snap.section("network"));
  opt_->save_state(*net_, snap.section("optimizer"));

  // progress: the loop position plus the epoch-in-progress accumulators a
  // resume needs to finish the interrupted epoch, and the run-log cursor.
  ckpt::ByteWriter& prog = snap.section("progress");
  prog.i64(global_iter_);
  prog.i64(epoch);
  prog.i64(next_iter);
  prog.real(loss_acc);
  prog.real(metric_acc);
  prog.i64(rank_batches);
  prog.i64(runlog_.records_written());

  // clock: every profiler timing section (measured comp/* as-of-snapshot,
  // modeled comm/* exactly), all counters and gauges, and the trainer's
  // per-epoch delta baselines. Histograms are summaries only and are not
  // restored (DESIGN.md §11).
  ckpt::ByteWriter& clock = snap.section("clock");
  const auto& reg = comm_.profiler().registry();
  const auto& timings = reg.timings();
  clock.u64(timings.size());
  for (const auto& [name, e] : timings) {
    clock.str(name);
    clock.f64(e.seconds);
    clock.i64(e.calls);
  }
  const auto& counters = reg.counters();
  clock.u64(counters.size());
  for (const auto& [name, c] : counters) {
    clock.str(name);
    clock.i64(c.value());
  }
  const auto& gauges = reg.gauges();
  clock.u64(gauges.size());
  for (const auto& [name, g] : gauges) {
    clock.str(name);
    clock.f64(g.value());
  }
  clock.u64(last_comm_seconds_.size());
  for (const auto& [name, s] : last_comm_seconds_) {
    clock.str(name);
    clock.f64(s);
  }
  clock.u64(last_comm_counters_.size());
  for (const auto& [name, v] : last_comm_counters_) {
    clock.str(name);
    clock.i64(v);
  }
  clock.u64(last_fault_counters_.size());
  for (const auto& [name, v] : last_fault_counters_) {
    clock.str(name);
    clock.i64(v);
  }

  // timeline: the async simulator's clocks / wire cursor / event sequence,
  // present exactly when async mode is active (presence checked on restore)
  // — resuming mid-overlap must replay the same completion order.
  if (comm_.async()) comm_.timeline()->save(snap.section("timeline"));

  // faults: the plan's draw cursor and the elastic world, present only when
  // fault injection is active (presence is itself checked on restore).
  if (comm_.faults_active()) {
    ckpt::ByteWriter& faults = snap.section("faults");
    const FaultPlan& plan = *comm_.fault_plan();
    faults.u64(plan.config().seed);
    faults.f64(plan.config().rate);
    ckpt::write_rng_state(faults, plan.rng_state());
    faults.i64(plan.drawn());
    faults.i64(world_);
    faults.index_vec(comm_.lost_ranks());
  }

  namespace fs = std::filesystem;
  fs::create_directories(ckpt_.dir);
  char name[40];
  std::snprintf(name, sizeof(name), "snapshot-%08lld.hysnp",
                static_cast<long long>(global_iter_));
  const std::string path = (fs::path(ckpt_.dir) / name).string();
  snap.write(path);
  // The verified-good rollback target is pinned through rotation: losing
  // it to retain_last would leave a triggered recovery with nothing to
  // restore (it unpins naturally once a newer snapshot is verified good).
  ckpt::retain_last(ckpt_.dir, ckpt_.keep, last_good_path_);
  // Neither comp/* nor comm/*: snapshot cost never enters the simulated
  // wall-time recompute.
  comm_.profiler().add("ckpt/write", timer.seconds());
  comm_.profiler().registry().counter("ckpt/snapshots").inc();
  if (runlog_.enabled()) {
    obs::Json rec = obs::Json::object();
    rec.set("path", path);
    rec.set("epoch", epoch);
    rec.set("iter", next_iter);
    rec.set("global_iter", global_iter_);
    runlog_.record("snapshot", std::move(rec));
  }
  return path;
}

void Trainer::restore_snapshot(const std::string& path) {
  WallTimer timer;
  ckpt::SnapshotReader snap(path);

  ckpt::ByteReader meta = snap.open("meta");
  const std::string opt_name = meta.str();
  HYLO_CHECK(opt_name == opt_->name(),
             "snapshot was written by optimizer " << opt_name
                 << ", trainer runs " << opt_->name());
  const index_t world = static_cast<index_t>(meta.i64());
  HYLO_CHECK(world == cfg_.world, "snapshot world " << world
                                      << " != configured world "
                                      << cfg_.world);
  const index_t batch = static_cast<index_t>(meta.i64());
  HYLO_CHECK(batch == cfg_.batch_size, "snapshot batch_size "
                                           << batch << " != configured "
                                           << cfg_.batch_size);
  meta.i64();  // epochs as of the snapshot; the horizon may move
  const std::uint64_t data_seed = meta.u64();
  HYLO_CHECK(data_seed == cfg_.data_seed,
             "snapshot data_seed " << data_seed << " != configured "
                                   << cfg_.data_seed);
  const bool seg = meta.b();
  HYLO_CHECK(seg == segmentation_, "snapshot task kind (segmentation="
                                       << seg << ") does not match dataset");
  meta.expect_done();

  // Network before optimizer: load_state walks the (restored) graph in the
  // same block order save_state did.
  ckpt::ByteReader net = snap.open("network");
  net_->deserialize_state(net);
  net.expect_done();
  ckpt::ByteReader optr = snap.open("optimizer");
  opt_->load_state(*net_, optr);
  optr.expect_done();

  ckpt::ByteReader prog = snap.open("progress");
  global_iter_ = static_cast<index_t>(prog.i64());
  start_epoch_ = static_cast<index_t>(prog.i64());
  start_iter_ = static_cast<index_t>(prog.i64());
  resume_loss_acc_ = prog.real();
  resume_metric_acc_ = prog.real();
  resume_rank_batches_ = static_cast<index_t>(prog.i64());
  const std::int64_t seq = prog.i64();
  prog.expect_done();
  // iter 0 is legal: recovery pins an initial snapshot before the first
  // training iteration so a rollback target always exists.
  HYLO_CHECK(global_iter_ >= 0 && start_iter_ >= 0 && start_epoch_ >= 0,
             "snapshot progress cursor is corrupt (global_iter "
                 << global_iter_ << ", epoch " << start_epoch_ << ", iter "
                 << start_iter_ << ")");
  HYLO_CHECK(start_epoch_ < cfg_.epochs,
             "snapshot is at epoch " << start_epoch_
                                     << " but the run ends at epoch "
                                     << cfg_.epochs << " — nothing to resume");

  ckpt::ByteReader clock = snap.open("clock");
  auto& reg = comm_.profiler().registry();
  for (std::uint64_t i = 0, n = clock.u64(); i < n; ++i) {
    const std::string name = clock.str();
    const double seconds = clock.f64();
    const std::int64_t calls = clock.i64();
    reg.set_timing(name, seconds, calls);
  }
  for (std::uint64_t i = 0, n = clock.u64(); i < n; ++i) {
    const std::string name = clock.str();
    const std::int64_t value = clock.i64();
    auto& c = reg.counter(name);
    HYLO_CHECK(value >= c.value(), "snapshot counter " << name
                                       << " is behind this trainer's — "
                                          "resume into a fresh Trainer");
    c.inc(value - c.value());
  }
  for (std::uint64_t i = 0, n = clock.u64(); i < n; ++i) {
    const std::string name = clock.str();
    reg.gauge(name).set(clock.f64());
  }
  last_comm_seconds_.clear();
  for (std::uint64_t i = 0, n = clock.u64(); i < n; ++i) {
    const std::string name = clock.str();
    last_comm_seconds_[name] = clock.f64();
  }
  last_comm_counters_.clear();
  for (std::uint64_t i = 0, n = clock.u64(); i < n; ++i) {
    const std::string name = clock.str();
    last_comm_counters_[name] = clock.i64();
  }
  last_fault_counters_.clear();
  for (std::uint64_t i = 0, n = clock.u64(); i < n; ++i) {
    const std::string name = clock.str();
    last_fault_counters_[name] = clock.i64();
  }
  clock.expect_done();

  // The timeline section must be present exactly when this trainer runs the
  // async simulator: replaying an async run in lockstep (or vice versa)
  // would silently diverge from the interrupted event order.
  if (comm_.async()) {
    HYLO_CHECK(snap.has("timeline"),
               "snapshot " << path << " has no event-timeline state but this "
                              "trainer runs HYLO_COMM=async");
    ckpt::ByteReader t = snap.open("timeline");
    comm_.timeline()->load(t);
    t.expect_done();
  } else {
    HYLO_CHECK(!snap.has("timeline"),
               "snapshot " << path << " carries event-timeline state but "
                              "this trainer runs the lockstep simulator — "
                              "configure the same HYLO_COMM mode");
  }

  // The fault section must be present exactly when this trainer has an
  // active plan: replaying a faulted run fault-free (or vice versa) would
  // silently diverge from the interrupted schedule.
  if (comm_.faults_active()) {
    HYLO_CHECK(snap.has("faults"),
               "snapshot " << path << " has no fault state but this trainer "
                              "has an active fault plan");
    ckpt::ByteReader f = snap.open("faults");
    FaultPlan& plan = *comm_.fault_plan();
    const std::uint64_t seed = f.u64();
    const double rate = f.f64();
    HYLO_CHECK(seed == plan.config().seed && rate == plan.config().rate,
               "snapshot fault plan (seed " << seed << ", rate " << rate
                   << ") does not match the configured plan (seed "
                   << plan.config().seed << ", rate " << plan.config().rate
                   << ")");
    const Rng::State rng = ckpt::read_rng_state(f);
    const std::int64_t drawn = f.i64();
    const index_t live_world = static_cast<index_t>(f.i64());
    std::vector<index_t> lost = f.index_vec();
    f.expect_done();
    HYLO_CHECK(live_world >= 1 &&
                   live_world + static_cast<index_t>(lost.size()) ==
                       cfg_.world,
               "snapshot elastic world " << live_world << " + "
                                         << lost.size()
                                         << " lost ranks != configured world "
                                         << cfg_.world);
    plan.restore(rng, drawn);
    comm_.restore_world(live_world, std::move(lost));
    world_ = live_world;
  } else {
    HYLO_CHECK(!snap.has("faults"),
               "snapshot " << path << " carries fault state but this trainer "
                              "has no fault plan — configure the same "
                              "HYLO_FAULTS/TrainConfig::faults spec");
  }

  // Re-shard data for the restored world (no-op unless ranks were lost).
  if (world_ != cfg_.world) {
    loaders_.clear();
    loaders_.reserve(static_cast<std::size_t>(world_));
    for (index_t r = 0; r < world_; ++r)
      loaders_.emplace_back(data_->train, cfg_.batch_size, cfg_.data_seed, r,
                            world_);
  }

  resumed_ = true;
  comm_.profiler().add("ckpt/restore", timer.seconds());
  if (runlog_.enabled()) {
    runlog_.set_next_seq(seq);
    obs::Json rec = obs::Json::object();
    rec.set("path", snap.path());
    rec.set("epoch", start_epoch_);
    rec.set("iter", start_iter_);
    rec.set("global_iter", global_iter_);
    rec.set("world", world_);
    runlog_.record("resume", std::move(rec));
  }
}

bool Trainer::weights_finite() const {
  for (auto* pb : net_->param_blocks())
    if (obs::count_nonfinite(pb->w) > 0) return false;
  for (auto pp : net_->plain_params())
    if (obs::count_nonfinite(*pp.value) > 0) return false;
  return true;
}

void Trainer::initiate_rollback(index_t epoch, index_t iter, const char* why) {
  HYLO_CHECK(!last_good_path_.empty(),
             "recovery triggered (" << why << ") at epoch " << epoch
                 << " iter " << iter
                 << " with no verified-good snapshot to roll back to — "
                    "tighten the checkpoint cadence (checkpoint.every / "
                    "HYLO_CKPT_EVERY)");
  const RecoveryAction act = recovery_.on_trigger(last_good_path_);
  if (act.exhausted) {
    // Loud failure with the recovery report on disk: never degrade a spent
    // budget into a silent wrong result.
    if (runlog_.enabled()) {
      obs::Json rec = obs::Json::object();
      rec.set("trigger", why);
      rec.set("epoch", epoch);
      rec.set("iter", iter);
      rec.set("global_iter", global_iter_);
      rec.set("rollbacks", recovery_.rollbacks());
      rec.set("budget", recovery_.config().max_rollbacks);
      rec.set("last_good", last_good_path_);
      runlog_.record("recovery_exhausted", std::move(rec));
      runlog_.finish();
    }
    HYLO_CHECK(false,
               "recovery budget exhausted: "
                   << recovery_.rollbacks() << "/"
                   << recovery_.config().max_rollbacks
                   << " rollbacks consumed and " << why
                   << " fired again at epoch " << epoch << " iter " << iter
                   << " — the run cannot self-heal; see the run log's "
                      "rollback records for the incident timeline");
  }
  comm_.profiler().registry().counter("recover/rollbacks").inc();
  if (runlog_.enabled()) {
    obs::Json rec = obs::Json::object();
    rec.set("trigger", why);
    rec.set("epoch", epoch);
    rec.set("iter", iter);
    rec.set("global_iter", global_iter_);
    rec.set("target", last_good_path_);
    rec.set("rung", act.rung);
    rec.set("first_order", act.first_order);
    rec.set("reduce_lr", act.reduce_lr);
    rec.set("rollbacks", recovery_.rollbacks());
    rec.set("budget_left", recovery_.budget_left());
    runlog_.record("rollback", std::move(rec));
    obs::Json args = obs::Json::object();
    args.set("trigger", why);
    args.set("rung", act.rung);
    runlog_.trace().add_instant("rollback", "recover",
                                obs::TraceBuffer::kCommTrack, std::move(args));
  }
  runlog_.console("[recover] " + std::string(why) + " at epoch " +
                  std::to_string(epoch) + " iter " + std::to_string(iter) +
                  " — rolling back to " + last_good_path_ + " (rung " +
                  std::to_string(act.rung) + ", " +
                  std::to_string(recovery_.budget_left()) + " retries left)");
  throw RollbackSignal{act, last_good_path_};
}

void Trainer::rollback_restore(const std::string& path) {
  WallTimer timer;
  ckpt::SnapshotReader snap(path);
  // Network before optimizer, as in restore_snapshot. The meta section was
  // written by this very trainer, so the structural checks are skipped; the
  // container's per-section CRCs still verify the bytes.
  ckpt::ByteReader net = snap.open("network");
  net_->deserialize_state(net);
  net.expect_done();
  ckpt::ByteReader optr = snap.open("optimizer");
  opt_->load_state(*net_, optr);
  optr.expect_done();
  ckpt::ByteReader prog = snap.open("progress");
  global_iter_ = static_cast<index_t>(prog.i64());
  start_epoch_ = static_cast<index_t>(prog.i64());
  start_iter_ = static_cast<index_t>(prog.i64());
  resume_loss_acc_ = prog.real();
  resume_metric_acc_ = prog.real();
  resume_rank_batches_ = static_cast<index_t>(prog.i64());
  prog.i64();  // run-log cursor: the live log keeps appending past it
  prog.expect_done();
  resumed_ = true;
  comm_.profiler().add("ckpt/restore", timer.seconds());
}

void Trainer::apply_world_shrink(index_t epoch, index_t next_iter) {
  const index_t old_world = world_;
  const std::vector<index_t> dead = comm_.commit_shrinks();
  if (dead.empty()) return;
  world_ = comm_.world();
  HYLO_CHECK(world_ >= 1 &&
                 world_ + static_cast<index_t>(dead.size()) == old_world,
             "elastic shrink bookkeeping diverged");

  // Layer ownership moves with the round-robin assignment; count the layers
  // whose owner changed — the state a real elastic runtime would migrate.
  const index_t layer_count =
      static_cast<index_t>(net_->param_blocks().size());
  index_t migrations = 0;
  if (layer_count > 0) {
    const LayerAssignment before(layer_count, old_world);
    const LayerAssignment after(layer_count, world_);
    for (index_t l = 0; l < layer_count; ++l)
      if (before.owner(l) != after.owner(l)) ++migrations;
  }
  comm_.profiler().registry().counter("dist/elastic/layer_migrations")
      .inc(migrations);

  // Re-shard the epoch among the survivors: each re-draws the deterministic
  // epoch permutation at the new world and fast-forwards to the boundary.
  loaders_.clear();
  loaders_.reserve(static_cast<std::size_t>(world_));
  for (index_t r = 0; r < world_; ++r)
    loaders_.emplace_back(data_->train, cfg_.batch_size, cfg_.data_seed, r,
                          world_);
  for (auto& loader : loaders_) {
    loader.start_epoch(epoch);
    loader.skip(next_iter);
  }

  if (runlog_.enabled()) {
    obs::Json lost = obs::Json::array();
    for (const auto r : dead) lost.push(r);
    obs::Json rec = obs::Json::object();
    rec.set("epoch", epoch);
    rec.set("iter", next_iter);
    rec.set("global_iter", global_iter_);
    rec.set("lost_ranks", std::move(lost));
    rec.set("world", world_);
    rec.set("layer_migrations", migrations);
    runlog_.record("world_shrink", std::move(rec));
  }
  runlog_.console("[elastic] world " + std::to_string(old_world) + " -> " +
                  std::to_string(world_) + " (" + std::to_string(dead.size()) +
                  " rank(s) lost, " + std::to_string(migrations) +
                  " layer migrations)");
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          const OptimConfig& cfg) {
  if (name == "SGD") return std::make_unique<Sgd>(cfg);
  if (name == "ADAM") return std::make_unique<Adam>(cfg);
  if (name == "KFAC" || name == "KAISA") return std::make_unique<KFac>(cfg);
  if (name == "EKFAC") return std::make_unique<EKFac>(cfg);
  if (name == "KBFGS-L" || name == "KBFGS") return std::make_unique<KBfgs>(cfg);
  if (name == "SNGD") return std::make_unique<Sngd>(cfg);
  if (name == "HyLo") return std::make_unique<HyloOptimizer>(cfg);
  HYLO_CHECK(false, "unknown optimizer " << name);
  return nullptr;
}

}  // namespace hylo
