#include "hylo/core/recovery.hpp"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#include "hylo/common/check.hpp"

namespace hylo {

namespace {
std::string lower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

double parse_number(const std::string& field, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  HYLO_CHECK(end != field.c_str() && *end == '\0',
             "bad recovery spec: " << what << " '" << field
                                   << "' is not a number (expected "
                                      "off|on|BUDGET[:FO_ITERS[:LR_BACKOFF]])");
  return v;
}
}  // namespace

RecoveryConfig RecoveryConfig::parse(const std::string& spec) {
  RecoveryConfig cfg;
  const std::string s = lower(spec);
  if (s.empty() || s == "off") return cfg;  // disabled
  cfg.enabled = true;
  if (s == "on" || s == "1") return cfg;
  const auto fields = split(s, ':');
  HYLO_CHECK(fields.size() <= 3,
             "bad recovery spec '" << spec
                                   << "': expected "
                                      "off|on|BUDGET[:FO_ITERS[:LR_BACKOFF]]");
  const double budget = parse_number(fields[0], "budget");
  HYLO_CHECK(budget >= 1.0 && budget == static_cast<index_t>(budget),
             "bad recovery spec '" << spec
                                   << "': budget must be a positive integer");
  cfg.max_rollbacks = static_cast<index_t>(budget);
  if (fields.size() >= 2) {
    const double fo = parse_number(fields[1], "first-order iters");
    HYLO_CHECK(fo >= 0.0 && fo == static_cast<index_t>(fo),
               "bad recovery spec '"
                   << spec << "': first-order iters must be a non-negative "
                              "integer");
    cfg.first_order_iters = static_cast<index_t>(fo);
  }
  if (fields.size() == 3) {
    const double backoff = parse_number(fields[2], "lr backoff");
    HYLO_CHECK(backoff > 0.0 && backoff <= 1.0,
               "bad recovery spec '" << spec
                                     << "': lr backoff must be in (0, 1]");
    cfg.lr_backoff = backoff;
  }
  return cfg;
}

std::optional<RecoveryConfig> RecoveryConfig::from_env() {
  const char* spec = std::getenv("HYLO_RECOVER");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

RecoveryAction RecoveryPolicy::on_trigger(const std::string& snapshot_path) {
  RecoveryAction act;
  if (rollbacks_ >= cfg_.max_rollbacks) {
    act.exhausted = true;
    return act;
  }
  ++rollbacks_;
  rung_ = snapshot_path == last_target_ ? rung_ + 1 : 1;
  last_target_ = snapshot_path;
  act.rung = rung_;
  act.first_order = rung_ >= 2;
  act.reduce_lr = rung_ >= 3;
  return act;
}

}  // namespace hylo
