#include "hylo/dist/fault_plan.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace hylo {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kStraggler: return "straggler";
    case FaultKind::kCorruptPayload: return "corrupt_payload";
    case FaultKind::kRankDown: return "rank_down";
    case FaultKind::kRankLost: return "rank_lost";
    case FaultKind::kSilentCorrupt: return "silent_corrupt";
  }
  return "unknown";
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

double parse_number(const std::string& s, const char* what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  HYLO_CHECK(used == s.size() && !s.empty(),
             "fault spec: bad " << what << " '" << s << "'");
  return v;
}

}  // namespace

FaultConfig FaultConfig::parse(const std::string& spec) {
  const auto fields = split(spec, ':');
  HYLO_CHECK(fields.size() == 2 || fields.size() == 3,
             "fault spec '" << spec << "' is not seed:rate[:mix]");
  FaultConfig cfg;
  const double seed = parse_number(fields[0], "seed");
  HYLO_CHECK(seed >= 0.0, "fault spec: seed must be non-negative");
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.rate = parse_number(fields[1], "rate");
  HYLO_CHECK(cfg.rate >= 0.0 && cfg.rate <= 1.0,
             "fault spec: rate " << cfg.rate << " outside [0, 1]");
  if (fields.size() == 3 && !fields[2].empty()) {
    // An explicit mix replaces the all-ones default: unnamed kinds are off.
    cfg.timeout_weight = cfg.straggler_weight = 0.0;
    cfg.corrupt_weight = cfg.rank_down_weight = cfg.rank_lost_weight = 0.0;
    cfg.silent_weight = 0.0;
    for (const std::string& pair : split(fields[2], ',')) {
      const auto kv = split(pair, '=');
      HYLO_CHECK(kv.size() == 2,
                 "fault spec: mix entry '" << pair << "' is not kind=weight");
      const double w = parse_number(kv[1], "mix weight");
      HYLO_CHECK(w >= 0.0, "fault spec: negative weight in '" << pair << "'");
      if (kv[0] == "timeout") {
        cfg.timeout_weight = w;
      } else if (kv[0] == "straggler") {
        cfg.straggler_weight = w;
      } else if (kv[0] == "corrupt" || kv[0] == "corrupt_payload") {
        cfg.corrupt_weight = w;
      } else if (kv[0] == "rank_down") {
        cfg.rank_down_weight = w;
      } else if (kv[0] == "rank_lost") {
        cfg.rank_lost_weight = w;
      } else if (kv[0] == "silent" || kv[0] == "silent_corrupt") {
        cfg.silent_weight = w;
      } else if (kv[0] == "escape") {
        // Pseudo-key: the silent_corrupt detection-escape probability, not
        // a mix weight.
        HYLO_CHECK(w <= 1.0,
                   "fault spec: escape " << w << " outside [0, 1]");
        cfg.sdc_escape = w;
      } else {
        HYLO_CHECK(false,
                   "fault spec: unknown fault kind '"
                       << kv[0]
                       << "' (want timeout|straggler|corrupt|rank_down|"
                          "rank_lost|silent|escape)");
      }
    }
  }
  HYLO_CHECK(!cfg.enabled() || cfg.total_weight() > 0.0,
             "fault spec: rate > 0 but every kind weight is zero");
  return cfg;
}

std::optional<FaultConfig> FaultConfig::from_env() {
  const char* env = std::getenv("HYLO_FAULTS");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return parse(env);
}

FaultPlan::FaultPlan(FaultConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  HYLO_CHECK(cfg_.rate >= 0.0 && cfg_.rate <= 1.0,
             "fault rate " << cfg_.rate << " outside [0, 1]");
  HYLO_CHECK(!cfg_.enabled() || cfg_.total_weight() > 0.0,
             "fault plan enabled with all kind weights zero");
}

FaultEvent FaultPlan::next(index_t world) {
  HYLO_CHECK(world >= 1, "fault plan needs world >= 1");
  ++drawn_;
  FaultEvent ev;
  if (!active() || rng_.uniform() >= cfg_.rate) return ev;

  double u = rng_.uniform() * cfg_.total_weight();
  if ((u -= cfg_.timeout_weight) < 0.0) {
    ev.kind = FaultKind::kTimeout;
  } else if ((u -= cfg_.straggler_weight) < 0.0) {
    ev.kind = FaultKind::kStraggler;
  } else if ((u -= cfg_.corrupt_weight) < 0.0) {
    ev.kind = FaultKind::kCorruptPayload;
  } else if ((u -= cfg_.rank_down_weight) < 0.0 ||
             (cfg_.rank_lost_weight <= 0.0 && cfg_.silent_weight <= 0.0)) {
    // The trailing clause keeps rank_down the terminal bucket when the
    // opt-in kinds are off, so pre-existing schedules replay byte-identically
    // even if floating-point residue leaves u marginally non-negative.
    ev.kind = FaultKind::kRankDown;
  } else if ((u -= cfg_.rank_lost_weight) < 0.0 ||
             cfg_.silent_weight <= 0.0) {
    ev.kind = FaultKind::kRankLost;
  } else {
    ev.kind = FaultKind::kSilentCorrupt;
  }
  ev.rank = rng_.uniform_int(world);
  switch (ev.kind) {
    case FaultKind::kTimeout:
      ev.retries = 1 + static_cast<int>(rng_.uniform_int(3));  // 1..3 lost
      break;
    case FaultKind::kStraggler:
      ev.slowdown = 2.0 + 14.0 * rng_.uniform();  // 2x .. 16x
      break;
    case FaultKind::kCorruptPayload:
      ev.retries = 1;  // checksum catch + one retransmission
      break;
    case FaultKind::kRankDown:
      ev.retries = 1;  // the attempt that died
      ev.recoverable = false;
      break;
    case FaultKind::kRankLost:
      ev.retries = 1;  // the attempt the dead rank took down with it
      ev.recoverable = false;
      break;
    case FaultKind::kSilentCorrupt:
      // Both draws happen unconditionally so the per-event draw count is
      // fixed and the schedule stays a pure function of the seed.
      ev.detected = rng_.uniform() >= cfg_.sdc_escape;
      ev.payload_seed = rng_.next_u64();
      ev.retries = ev.detected ? 1 : 0;  // caught: the rejected attempt
      break;
    case FaultKind::kNone:
      break;
  }
  return ev;
}

}  // namespace hylo
