#include "hylo/dist/comm.hpp"

#include <algorithm>

#include "hylo/tensor/ops.hpp"

namespace hylo {

void CommSim::allreduce_mean(std::vector<Matrix*> bufs,
                             const std::string& section) {
  HYLO_CHECK(static_cast<index_t>(bufs.size()) == world_,
             "allreduce needs one buffer per rank");
  // Rank 0's buffer is both accumulator and source: a null or duplicated
  // pointer would silently double-count that rank's contribution.
  for (std::size_t i = 0; i < bufs.size(); ++i)
    HYLO_CHECK(bufs[i] != nullptr, "allreduce buffer for rank " << i
                                   << " is null");
  std::vector<Matrix*> sorted = bufs;
  std::sort(sorted.begin(), sorted.end());
  HYLO_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "allreduce buffers alias: the same Matrix* appears for two "
             "ranks, which would sum a buffer into itself");
  Matrix& first = *bufs[0];
  for (index_t r = 1; r < world_; ++r) first += *bufs[static_cast<std::size_t>(r)];
  first *= 1.0 / static_cast<real_t>(world_);
  for (index_t r = 1; r < world_; ++r) *bufs[static_cast<std::size_t>(r)] = first;
  // The shared-memory exchange above already completed, so injected faults
  // can only cost time, never the data: retry-until-success.
  charge_allreduce(wire_bytes(first.size()), section,
                   FailMode::kRetryUntilSuccess);
}

Matrix CommSim::allgather_rows(const std::vector<const Matrix*>& locals,
                               const std::string& section) {
  HYLO_CHECK(static_cast<index_t>(locals.size()) == world_,
             "allgather needs one block per rank");
  std::vector<Matrix> parts;
  parts.reserve(locals.size());
  index_t max_bytes = 0;
  for (const auto* m : locals) {
    parts.push_back(*m);
    max_bytes = std::max(max_bytes, wire_bytes(m->size()));
  }
  charge_allgather(max_bytes, section, FailMode::kRetryUntilSuccess);
  return vstack(parts);
}

void CommSim::configure_faults(const FaultConfig& cfg) {
  fault_plan_ = cfg.enabled() ? std::make_unique<FaultPlan>(cfg) : nullptr;
}

double CommSim::apply_fault(const char* kind, const FaultEvent& ev,
                            index_t bytes, const std::string& section,
                            double seconds, FailMode mode) {
  auto& reg = profiler_.registry();
  reg.counter("comm/faults/injected").inc();
  reg.counter(std::string("comm/faults/") + to_string(ev.kind)).inc();
  if (trace_ != nullptr) {
    obs::Json args = obs::Json::object();
    args.set("collective", kind);
    args.set("section", section);
    args.set("kind", to_string(ev.kind));
    args.set("rank", static_cast<std::int64_t>(ev.rank));
    if (ev.kind == FaultKind::kStraggler) args.set("slowdown", ev.slowdown);
    if (ev.retries > 0)
      args.set("retries", static_cast<std::int64_t>(ev.retries));
    trace_->add_instant(std::string("fault:") + to_string(ev.kind), "comm",
                        obs::TraceBuffer::kCommTrack, std::move(args));
  }

  double extra = 0.0;
  switch (ev.kind) {
    case FaultKind::kStraggler:
      extra = seconds * (ev.slowdown - 1.0);
      break;
    case FaultKind::kTimeout:
    case FaultKind::kCorruptPayload:
      extra = retry_seconds(model_, seconds, ev.retries);
      reg.counter("comm/faults/retries").inc(ev.retries);
      reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
      break;
    case FaultKind::kRankDown: {
      const double wasted = retry_seconds(model_, seconds, ev.retries);
      reg.counter("comm/faults/retries").inc(ev.retries);
      reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
      if (mode == FailMode::kMayFail) {
        // The attempts were made (and their wall time passed) before the
        // failure was declared: charge them, then let the caller degrade.
        profiler_.add("comm/faults/wasted", wasted);
        reg.counter("comm/faults/unrecoverable").inc();
        throw CommFailure("collective " + std::string(kind) + " under '" +
                          section + "' lost rank " + std::to_string(ev.rank) +
                          " and could not complete");
      }
      // Must-complete collective: re-form the ring without the dead rank
      // (one extra full-cost round) and finish.
      reg.counter("comm/faults/forced_recovery").inc();
      extra = wasted + retry_seconds(model_, seconds, 1);
      break;
    }
    case FaultKind::kRankLost: {
      // Permanent death. The data already lives in shared memory, so the
      // collective always completes: charge the attempt the dead rank took
      // down plus one re-form round among the survivors, and queue the rank
      // for the trainer to commit at the next iteration boundary. A world of
      // one (or one that would shrink to zero) cannot lose a rank — the
      // event degrades to a forced recovery with no shrink.
      const double wasted = retry_seconds(model_, seconds, ev.retries);
      reg.counter("comm/faults/retries").inc(ev.retries);
      reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
      reg.counter("comm/faults/forced_recovery").inc();
      extra = wasted + retry_seconds(model_, seconds, 1);
      const bool already_dying =
          std::find(pending_lost_.begin(), pending_lost_.end(), ev.rank) !=
          pending_lost_.end();
      if (!already_dying &&
          world_ - static_cast<index_t>(pending_lost_.size()) > 1)
        pending_lost_.push_back(ev.rank);
      break;
    }
    case FaultKind::kNone:
      break;
  }
  reg.histogram("comm/faults/extra_seconds").observe(extra);
  return extra;
}

std::vector<index_t> CommSim::commit_shrinks() {
  std::vector<index_t> committed;
  committed.swap(pending_lost_);
  auto& reg = profiler_.registry();
  for (const index_t rank : committed) {
    HYLO_CHECK(world_ > 1, "cannot shrink a world of one");
    --world_;
    lost_ranks_.push_back(rank);
    reg.counter("dist/elastic/world_shrinks").inc();
    reg.gauge("dist/elastic/world").set(static_cast<double>(world_));
    if (trace_ != nullptr) {
      obs::Json args = obs::Json::object();
      args.set("lost_rank", static_cast<std::int64_t>(rank));
      args.set("world", static_cast<std::int64_t>(world_));
      trace_->add_instant("world_shrink", "comm", obs::TraceBuffer::kCommTrack,
                          std::move(args));
    }
  }
  return committed;
}

void CommSim::restore_world(index_t world, std::vector<index_t> lost) {
  HYLO_CHECK(world >= 1, "restored world must be >= 1");
  world_ = world;
  lost_ranks_ = std::move(lost);
  pending_lost_.clear();
}

void CommSim::charge(const char* kind, index_t bytes,
                     const std::string& section, double seconds,
                     FailMode mode) {
  FaultEvent ev;
  double extra = 0.0;
  if (faults_active()) {
    ev = fault_plan_->next(world_);
    if (ev.kind != FaultKind::kNone)
      extra = apply_fault(kind, ev, bytes, section, seconds, mode);
  }
  profiler_.add(section, seconds + extra);
  auto& reg = profiler_.registry();
  reg.counter(section + ".bytes").inc(bytes);
  reg.counter(section + ".msgs").inc();
  if (trace_ != nullptr) {
    obs::Json args = obs::Json::object();
    args.set("kind", kind);
    args.set("bytes", static_cast<std::int64_t>(bytes));
    args.set("world", static_cast<std::int64_t>(world_));
    if (ev.kind != FaultKind::kNone) {
      args.set("fault", to_string(ev.kind));
      args.set("fault_extra_s", extra);
    }
    trace_->add_collective(section, seconds + extra, std::move(args));
  }
}

void CommSim::charge_broadcast(index_t bytes, const std::string& section,
                               FailMode mode) {
  charge("broadcast", bytes, section, broadcast_seconds(model_, world_, bytes),
         mode);
}

void CommSim::charge_allgather(index_t bytes_per_rank,
                               const std::string& section, FailMode mode) {
  charge("allgather", bytes_per_rank, section,
         allgather_seconds(model_, world_, bytes_per_rank), mode);
}

void CommSim::charge_allreduce(index_t bytes, const std::string& section,
                               FailMode mode) {
  charge("allreduce", bytes, section, allreduce_seconds(model_, world_, bytes),
         mode);
}

double CommSim::comm_seconds() const {
  double total = 0.0;
  for (const auto& [name, entry] : profiler_.sections())
    if (name.rfind("comm/", 0) == 0) total += entry.seconds;
  return total;
}

std::int64_t CommSim::total_wire_bytes() const {
  std::int64_t total = 0;
  for (const auto& [name, c] : profiler_.registry().counters())
    if (name.rfind("comm/", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".bytes") == 0)
      total += c.value();
  return total;
}

std::int64_t CommSim::total_messages() const {
  std::int64_t total = 0;
  for (const auto& [name, c] : profiler_.registry().counters())
    if (name.rfind("comm/", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".msgs") == 0)
      total += c.value();
  return total;
}

}  // namespace hylo
