#include "hylo/dist/comm.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "hylo/common/rng.hpp"
#include "hylo/tensor/ops.hpp"

namespace hylo {

const char* to_string(CommMode mode) {
  switch (mode) {
    case CommMode::kLockstep: return "lockstep";
    case CommMode::kAsync: return "async";
  }
  return "?";
}

std::optional<CommMode> comm_mode_from_env() {
  const char* raw = std::getenv("HYLO_COMM");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  std::string v(raw);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "lockstep" || v == "sync") return CommMode::kLockstep;
  if (v == "async" || v == "event") return CommMode::kAsync;
  HYLO_CHECK(false, "HYLO_COMM='" << raw
                    << "' is not a comm mode (lockstep|sync|async|event)");
  return std::nullopt;
}

void corrupt_values(Matrix& m, std::uint64_t seed) {
  if (m.size() == 0) return;
  Rng rng(seed);
  const index_t flips = 1 + rng.uniform_int(3);
  for (index_t f = 0; f < flips; ++f) {
    real_t& v = m.data()[rng.uniform_int(m.size())];
    const index_t bit = rng.uniform_int(
        static_cast<index_t>(sizeof(real_t)) * 8);
    unsigned char bytes[sizeof(real_t)];
    std::memcpy(bytes, &v, sizeof(real_t));
    bytes[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
    std::memcpy(&v, bytes, sizeof(real_t));
  }
}

void CommSim::set_mode(CommMode mode) {
  mode_ = mode;
  if (mode == CommMode::kAsync && timeline_ == nullptr)
    timeline_ = std::make_unique<EventTimeline>(world_);
}

void CommSim::allreduce_mean(std::vector<Matrix*> bufs,
                             const std::string& section) {
  HYLO_CHECK(static_cast<index_t>(bufs.size()) == world_,
             "allreduce needs one buffer per rank");
  // Rank 0's buffer is both accumulator and source: a null or duplicated
  // pointer would silently double-count that rank's contribution.
  for (std::size_t i = 0; i < bufs.size(); ++i)
    HYLO_CHECK(bufs[i] != nullptr, "allreduce buffer for rank " << i
                                   << " is null");
  std::vector<Matrix*> sorted = bufs;
  std::sort(sorted.begin(), sorted.end());
  HYLO_CHECK(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
             "allreduce buffers alias: the same Matrix* appears for two "
             "ranks, which would sum a buffer into itself");
  Matrix& first = *bufs[0];
  for (index_t r = 1; r < world_; ++r) first += *bufs[static_cast<std::size_t>(r)];
  first *= 1.0 / static_cast<real_t>(world_);
  for (index_t r = 1; r < world_; ++r) *bufs[static_cast<std::size_t>(r)] = first;
  // The shared-memory exchange above already completed, so injected faults
  // can only cost time, never the data: retry-until-success. The one
  // exception is an escaped silent_corrupt event, which flips bits in the
  // reduced payload — every replica sees the same corrupted result, as a
  // real in-ring flip would propagate.
  charge_allreduce(wire_bytes(first.size()), section,
                   FailMode::kRetryUntilSuccess);
  if (const auto ticket = take_silent_corruption()) {
    corrupt_values(first, *ticket);
    for (index_t r = 1; r < world_; ++r)
      *bufs[static_cast<std::size_t>(r)] = first;
  }
}

Matrix CommSim::allgather_rows(const std::vector<const Matrix*>& locals,
                               const std::string& section) {
  HYLO_CHECK(static_cast<index_t>(locals.size()) == world_,
             "allgather needs one block per rank");
  std::vector<index_t> bytes_per_rank;
  bytes_per_rank.reserve(locals.size());
  HYLO_CHECK(locals.front() != nullptr, "allgather block is null");
  const index_t cols = locals.front()->cols();
  index_t rows = 0;
  for (const auto* m : locals) {
    HYLO_CHECK(m != nullptr, "allgather block is null");
    HYLO_CHECK(m->cols() == cols, "allgather column mismatch");
    rows += m->rows();
    bytes_per_rank.push_back(wire_bytes(m->size()));
  }
  // Stack straight into the result — the seed path copied every block into
  // a `parts` vector first and then vstack()ed that, moving each block
  // twice.
  Matrix out(rows, cols);
  index_t r = 0;
  for (const auto* m : locals) {
    std::copy(m->data(), m->data() + m->size(), out.row_ptr(r));
    r += m->rows();
  }
  charge_allgather(bytes_per_rank, section, FailMode::kRetryUntilSuccess);
  if (const auto ticket = take_silent_corruption())
    corrupt_values(out, *ticket);
  return out;
}

void CommSim::configure_faults(const FaultConfig& cfg) {
  fault_plan_ = cfg.enabled() ? std::make_unique<FaultPlan>(cfg) : nullptr;
}

double CommSim::apply_fault(const char* kind, const FaultEvent& ev,
                            index_t bytes, const std::string& section,
                            double seconds, FailMode mode) {
  auto& reg = profiler_.registry();
  reg.counter("comm/faults/injected").inc();
  reg.counter(std::string("comm/faults/") + to_string(ev.kind)).inc();
  if (trace_ != nullptr) {
    obs::Json args = obs::Json::object();
    args.set("collective", kind);
    args.set("section", section);
    args.set("kind", to_string(ev.kind));
    args.set("rank", static_cast<std::int64_t>(ev.rank));
    if (ev.kind == FaultKind::kStraggler) args.set("slowdown", ev.slowdown);
    if (ev.retries > 0)
      args.set("retries", static_cast<std::int64_t>(ev.retries));
    if (ev.kind == FaultKind::kSilentCorrupt)
      args.set("escaped", static_cast<std::int64_t>(ev.detected ? 0 : 1));
    trace_->add_instant(std::string("fault:") + to_string(ev.kind), "comm",
                        obs::TraceBuffer::kCommTrack, std::move(args));
  }

  double extra = 0.0;
  switch (ev.kind) {
    case FaultKind::kStraggler:
      extra = seconds * (ev.slowdown - 1.0);
      break;
    case FaultKind::kTimeout:
    case FaultKind::kCorruptPayload:
      extra = retry_seconds(model_, seconds, ev.retries);
      reg.counter("comm/faults/retries").inc(ev.retries);
      reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
      break;
    case FaultKind::kRankDown: {
      const double wasted = retry_seconds(model_, seconds, ev.retries);
      reg.counter("comm/faults/retries").inc(ev.retries);
      reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
      if (mode == FailMode::kMayFail) {
        // The attempts were made (and their wall time passed) before the
        // failure was declared: charge them, then let the caller degrade.
        profiler_.add("comm/faults/wasted", wasted);
        reg.counter("comm/faults/unrecoverable").inc();
        throw CommFailure("collective " + std::string(kind) + " under '" +
                          section + "' lost rank " + std::to_string(ev.rank) +
                          " and could not complete");
      }
      // Must-complete collective: re-form the ring without the dead rank
      // (one extra full-cost round) and finish.
      reg.counter("comm/faults/forced_recovery").inc();
      extra = wasted + retry_seconds(model_, seconds, 1);
      break;
    }
    case FaultKind::kRankLost: {
      // Permanent death. The data already lives in shared memory, so the
      // collective always completes: charge the attempt the dead rank took
      // down plus one re-form round among the survivors, and queue the rank
      // for the trainer to commit at the next iteration boundary. A world of
      // one (or one that would shrink to zero) cannot lose a rank — the
      // event degrades to a forced recovery with no shrink.
      const double wasted = retry_seconds(model_, seconds, ev.retries);
      reg.counter("comm/faults/retries").inc(ev.retries);
      reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
      reg.counter("comm/faults/forced_recovery").inc();
      extra = wasted + retry_seconds(model_, seconds, 1);
      const bool already_dying =
          std::find(pending_lost_.begin(), pending_lost_.end(), ev.rank) !=
          pending_lost_.end();
      if (!already_dying &&
          world_ - static_cast<index_t>(pending_lost_.size()) > 1)
        pending_lost_.push_back(ev.rank);
      break;
    }
    case FaultKind::kSilentCorrupt: {
      // The application-level CRC pass runs on every silent event, caught
      // or escaped — its modeled cost is charged either way.
      const double crc = checksum_seconds(model_, bytes);
      if (ev.detected) {
        // Caught: behaves like transport-level corruption, except the
        // detection happened at the application layer. Degradable
        // collectives abort to stale factors; must-complete collectives
        // retransmit.
        reg.counter("comm/faults/sdc_detected").inc();
        reg.counter("comm/faults/retries").inc(ev.retries);
        reg.counter("comm/faults/retry_bytes").inc(bytes * ev.retries);
        if (mode == FailMode::kMayFail) {
          profiler_.add("comm/faults/wasted",
                        crc + retry_seconds(model_, seconds, ev.retries));
          reg.counter("comm/faults/unrecoverable").inc();
          throw CommFailure("collective " + std::string(kind) + " under '" +
                            section +
                            "' failed its payload check (silent corruption "
                            "caught) and was dropped");
        }
        reg.counter("comm/faults/forced_recovery").inc();
        extra = crc + retry_seconds(model_, seconds, ev.retries);
      } else {
        // Escaped: the collective "succeeds" and the caller must corrupt
        // the payload it just moved (take_silent_corruption ticket).
        reg.counter("comm/faults/sdc_escaped").inc();
        pending_sdc_ = ev.payload_seed;
        extra = crc;
      }
      break;
    }
    case FaultKind::kNone:
      break;
  }
  reg.histogram("comm/faults/extra_seconds").observe(extra);
  return extra;
}

std::vector<index_t> CommSim::commit_shrinks() {
  std::vector<index_t> committed;
  committed.swap(pending_lost_);
  auto& reg = profiler_.registry();
  for (const index_t rank : committed) {
    HYLO_CHECK(world_ > 1, "cannot shrink a world of one");
    --world_;
    lost_ranks_.push_back(rank);
    reg.counter("dist/elastic/world_shrinks").inc();
    reg.gauge("dist/elastic/world").set(static_cast<double>(world_));
    if (trace_ != nullptr) {
      obs::Json args = obs::Json::object();
      args.set("lost_rank", static_cast<std::int64_t>(rank));
      args.set("world", static_cast<std::int64_t>(world_));
      trace_->add_instant("world_shrink", "comm", obs::TraceBuffer::kCommTrack,
                          std::move(args));
    }
  }
  if (timeline_ != nullptr && !committed.empty()) timeline_->set_world(world_);
  return committed;
}

void CommSim::restore_world(index_t world, std::vector<index_t> lost) {
  HYLO_CHECK(world >= 1, "restored world must be >= 1");
  world_ = world;
  lost_ranks_ = std::move(lost);
  pending_lost_.clear();
  if (timeline_ != nullptr) timeline_->set_world(world_);
}

void CommSim::charge(const char* kind, index_t bytes,
                     const std::string& section, double seconds,
                     FailMode mode) {
  // A corruption ticket belongs to exactly one collective: drop any that the
  // previous charge's caller declined to consume.
  pending_sdc_.reset();
  if (async()) {
    // Blocking collective on the event timeline: it starts once the slowest
    // rank has arrived and every rank then waits out its completion.
    const CommEvent ev =
        icharge(kind, bytes, section, seconds, timeline_->max_clock(), mode);
    timeline_->barrier_at(ev.failed ? ev.start_s : ev.ready_s);
    if (ev.failed)
      throw CommFailure("collective " + std::string(kind) + " under '" +
                        section + "' lost a rank and could not complete");
    return;
  }
  FaultEvent ev;
  double extra = 0.0;
  if (faults_active()) {
    ev = fault_plan_->next(world_);
    if (ev.kind != FaultKind::kNone)
      extra = apply_fault(kind, ev, bytes, section, seconds, mode);
  }
  profiler_.add(section, seconds + extra);
  auto& reg = profiler_.registry();
  reg.counter(section + ".bytes").inc(bytes);
  reg.counter(section + ".msgs").inc();
  if (trace_ != nullptr) {
    obs::Json args = obs::Json::object();
    args.set("kind", kind);
    args.set("bytes", static_cast<std::int64_t>(bytes));
    args.set("world", static_cast<std::int64_t>(world_));
    if (ev.kind != FaultKind::kNone) {
      args.set("fault", to_string(ev.kind));
      args.set("fault_extra_s", extra);
    }
    trace_->add_collective(section, seconds + extra, std::move(args));
  }
}

CommEvent CommSim::icharge(const char* kind, index_t ledger_bytes,
                           const std::string& section, double seconds,
                           double earliest_start_s, FailMode mode) {
  HYLO_CHECK(async() && timeline_ != nullptr,
             "icharge requires async comm mode");
  pending_sdc_.reset();
  FaultEvent fev;
  double extra = 0.0;
  bool failed = false;
  if (faults_active()) {
    fev = fault_plan_->next(world_);
    if (fev.kind != FaultKind::kNone) {
      try {
        extra = apply_fault(kind, fev, ledger_bytes, section, seconds, mode);
      } catch (const CommFailure&) {
        // Event-based failure reporting: the wasted attempts were charged
        // by apply_fault; the handle carries the loss to the caller.
        failed = true;
      }
    }
  }
  const TimelineEvent tev = timeline_->issue(
      section, earliest_start_s, failed ? 0.0 : seconds + extra, failed);
  if (!failed) {
    profiler_.add(section, seconds + extra);
    auto& reg = profiler_.registry();
    reg.counter(section + ".bytes").inc(ledger_bytes);
    reg.counter(section + ".msgs").inc();
    if (trace_ != nullptr) {
      obs::Json args = obs::Json::object();
      args.set("kind", kind);
      args.set("bytes", static_cast<std::int64_t>(ledger_bytes));
      args.set("world", static_cast<std::int64_t>(world_));
      args.set("seq", static_cast<std::int64_t>(tev.seq));
      if (fev.kind != FaultKind::kNone) {
        args.set("fault", to_string(fev.kind));
        args.set("fault_extra_s", extra);
      }
      trace_->add_span_at(section, "comm", obs::TraceBuffer::kCommTrack,
                          tev.start_s, seconds + extra, std::move(args));
    }
  }
  return CommEvent{tev.seq, tev.start_s, tev.ready_s, failed};
}

namespace {
/// Total wire traffic of a ring allgather: every rank's payload traverses
/// world-1 hops.
index_t allgather_ledger_bytes(index_t world, index_t sum_bytes) {
  return (world - 1) * sum_bytes;
}
}  // namespace

void CommSim::charge_broadcast(index_t bytes, const std::string& section,
                               FailMode mode) {
  charge("broadcast", bytes, section, broadcast_seconds(model_, world_, bytes),
         mode);
}

void CommSim::charge_allgather(index_t bytes_per_rank,
                               const std::string& section, FailMode mode) {
  charge("allgather",
         allgather_ledger_bytes(world_, world_ * bytes_per_rank), section,
         allgather_seconds(model_, world_, bytes_per_rank), mode);
}

void CommSim::charge_allgather(const std::vector<index_t>& bytes_per_rank,
                               const std::string& section, FailMode mode) {
  HYLO_CHECK(static_cast<index_t>(bytes_per_rank.size()) == world_,
             "allgather needs one payload size per rank");
  index_t sum = 0, mx = 0;
  for (const index_t b : bytes_per_rank) {
    HYLO_CHECK(b >= 0, "negative allgather payload");
    sum += b;
    mx = std::max(mx, b);
  }
  charge("allgather", allgather_ledger_bytes(world_, sum), section,
         allgather_seconds(model_, world_, mx), mode);
}

void CommSim::charge_allreduce(index_t bytes, const std::string& section,
                               FailMode mode) {
  charge("allreduce", bytes, section, allreduce_seconds(model_, world_, bytes),
         mode);
}

CommEvent CommSim::icharge_allgather(const std::vector<index_t>& bytes_per_rank,
                                     const std::string& section,
                                     double earliest_start_s, FailMode mode) {
  HYLO_CHECK(static_cast<index_t>(bytes_per_rank.size()) == world_,
             "allgather needs one payload size per rank");
  index_t sum = 0, mx = 0;
  for (const index_t b : bytes_per_rank) {
    HYLO_CHECK(b >= 0, "negative allgather payload");
    sum += b;
    mx = std::max(mx, b);
  }
  return icharge("allgather", allgather_ledger_bytes(world_, sum), section,
                 allgather_seconds(model_, world_, mx), earliest_start_s,
                 mode);
}

CommEvent CommSim::icharge_broadcast(index_t bytes, const std::string& section,
                                     double earliest_start_s, FailMode mode) {
  return icharge("broadcast", bytes, section,
                 broadcast_seconds(model_, world_, bytes), earliest_start_s,
                 mode);
}

CommEvent CommSim::icharge_allreduce(index_t bytes, const std::string& section,
                                     double earliest_start_s, FailMode mode) {
  return icharge("allreduce", bytes, section,
                 allreduce_seconds(model_, world_, bytes), earliest_start_s,
                 mode);
}

double CommSim::comm_seconds() const {
  double total = 0.0;
  for (const auto& [name, entry] : profiler_.sections())
    if (name.rfind("comm/", 0) == 0) total += entry.seconds;
  return total;
}

std::int64_t CommSim::total_wire_bytes() const {
  std::int64_t total = 0;
  for (const auto& [name, c] : profiler_.registry().counters())
    if (name.rfind("comm/", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".bytes") == 0)
      total += c.value();
  return total;
}

std::int64_t CommSim::total_messages() const {
  std::int64_t total = 0;
  for (const auto& [name, c] : profiler_.registry().counters())
    if (name.rfind("comm/", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".msgs") == 0)
      total += c.value();
  return total;
}

}  // namespace hylo
