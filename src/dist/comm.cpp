#include "hylo/dist/comm.hpp"

#include "hylo/tensor/ops.hpp"

namespace hylo {

void CommSim::allreduce_mean(std::vector<Matrix*> bufs,
                             const std::string& section) {
  HYLO_CHECK(static_cast<index_t>(bufs.size()) == world_,
             "allreduce needs one buffer per rank");
  Matrix& first = *bufs[0];
  for (index_t r = 1; r < world_; ++r) first += *bufs[static_cast<std::size_t>(r)];
  first *= 1.0 / static_cast<real_t>(world_);
  for (index_t r = 1; r < world_; ++r) *bufs[static_cast<std::size_t>(r)] = first;
  charge_allreduce(wire_bytes(first.size()), section);
}

Matrix CommSim::allgather_rows(const std::vector<const Matrix*>& locals,
                               const std::string& section) {
  HYLO_CHECK(static_cast<index_t>(locals.size()) == world_,
             "allgather needs one block per rank");
  std::vector<Matrix> parts;
  parts.reserve(locals.size());
  index_t max_bytes = 0;
  for (const auto* m : locals) {
    parts.push_back(*m);
    max_bytes = std::max(max_bytes, wire_bytes(m->size()));
  }
  charge_allgather(max_bytes, section);
  return vstack(parts);
}

void CommSim::charge(const char* kind, index_t bytes,
                     const std::string& section, double seconds) {
  profiler_.add(section, seconds);
  auto& reg = profiler_.registry();
  reg.counter(section + ".bytes").inc(bytes);
  reg.counter(section + ".msgs").inc();
  if (trace_ != nullptr) {
    obs::Json args = obs::Json::object();
    args.set("kind", kind);
    args.set("bytes", static_cast<std::int64_t>(bytes));
    args.set("world", static_cast<std::int64_t>(world_));
    trace_->add_collective(section, seconds, std::move(args));
  }
}

void CommSim::charge_broadcast(index_t bytes, const std::string& section) {
  charge("broadcast", bytes, section, broadcast_seconds(model_, world_, bytes));
}

void CommSim::charge_allgather(index_t bytes_per_rank,
                               const std::string& section) {
  charge("allgather", bytes_per_rank, section,
         allgather_seconds(model_, world_, bytes_per_rank));
}

void CommSim::charge_allreduce(index_t bytes, const std::string& section) {
  charge("allreduce", bytes, section, allreduce_seconds(model_, world_, bytes));
}

double CommSim::comm_seconds() const {
  double total = 0.0;
  for (const auto& [name, entry] : profiler_.sections())
    if (name.rfind("comm/", 0) == 0) total += entry.seconds;
  return total;
}

std::int64_t CommSim::total_wire_bytes() const {
  std::int64_t total = 0;
  for (const auto& [name, c] : profiler_.registry().counters())
    if (name.rfind("comm/", 0) == 0 && name.size() > 6 &&
        name.compare(name.size() - 6, 6, ".bytes") == 0)
      total += c.value();
  return total;
}

std::int64_t CommSim::total_messages() const {
  std::int64_t total = 0;
  for (const auto& [name, c] : profiler_.registry().counters())
    if (name.rfind("comm/", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".msgs") == 0)
      total += c.value();
  return total;
}

}  // namespace hylo
