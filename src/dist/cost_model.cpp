#include "hylo/dist/cost_model.hpp"

#include <cmath>

#include "hylo/common/check.hpp"

namespace hylo {

InterconnectModel mist_v100() {
  // NVLink ~150 GB/s intra-node blended with IB EDR ~12.5 GB/s inter-node;
  // collectives at P >= 8 are bottlenecked by the IB hop.
  return {.name = "mist-v100", .latency_s = 4e-6, .bandwidth_bps = 12.5e9};
}

InterconnectModel aws_p2_k80() {
  // PCIe gen3 x16 shared through a switch: ~8 GB/s effective, higher launch
  // latency on K80-era hosts.
  return {.name = "aws-p2-k80", .latency_s = 12e-6, .bandwidth_bps = 8e9};
}

InterconnectModel loopback() {
  return {.name = "loopback", .latency_s = 0.0, .bandwidth_bps = 1e18};
}

namespace {
double ceil_log2(index_t world) {
  double l = 0.0;
  index_t v = 1;
  while (v < world) {
    v *= 2;
    l += 1.0;
  }
  return l;
}
double link_time(const InterconnectModel& m, double bytes) {
  return m.latency_s + bytes / m.bandwidth_bps;
}
}  // namespace

double allreduce_seconds(const InterconnectModel& m, index_t world,
                         index_t bytes) {
  HYLO_CHECK(world >= 1 && bytes >= 0, "bad allreduce args");
  if (world == 1) return 0.0;
  const double chunk = static_cast<double>(bytes) / static_cast<double>(world);
  return 2.0 * static_cast<double>(world - 1) * link_time(m, chunk);
}

double allgather_seconds(const InterconnectModel& m, index_t world,
                         index_t bytes_per_rank) {
  HYLO_CHECK(world >= 1 && bytes_per_rank >= 0, "bad allgather args");
  if (world == 1) return 0.0;
  return static_cast<double>(world - 1) *
         link_time(m, static_cast<double>(bytes_per_rank));
}

double broadcast_seconds(const InterconnectModel& m, index_t world,
                         index_t bytes) {
  HYLO_CHECK(world >= 1 && bytes >= 0, "bad broadcast args");
  if (world == 1) return 0.0;
  return ceil_log2(world) * link_time(m, static_cast<double>(bytes));
}

double reduce_seconds(const InterconnectModel& m, index_t world,
                      index_t bytes) {
  return broadcast_seconds(m, world, bytes);
}

double retry_seconds(const InterconnectModel& m, double base_seconds,
                     int retries) {
  HYLO_CHECK(base_seconds >= 0.0 && retries >= 0, "bad retry args");
  double total = 0.0;
  double backoff = 100.0 * m.latency_s;
  for (int k = 0; k < retries; ++k) {
    total += base_seconds + backoff;
    backoff *= 2.0;
  }
  return total;
}

double checksum_seconds(const InterconnectModel& m, index_t bytes) {
  HYLO_CHECK(bytes >= 0, "bad checksum args");
  // A CRC sweep is memory-bound, not wire-bound: model it as a single pass
  // at 4x the link bandwidth plus one launch latency.
  return m.latency_s +
         static_cast<double>(bytes) / (4.0 * m.bandwidth_bps);
}

ComputeModel v100_fp32() {
  // ~14 TFLOP/s sustained on large FP32 GEMMs (15.7 peak).
  return {.name = "v100-fp32", .flops_per_s = 14e12};
}

ComputeModel k80_fp32() {
  // ~4 TFLOP/s sustained per GK210 die.
  return {.name = "k80-fp32", .flops_per_s = 4e12};
}

double compute_seconds(const ComputeModel& m, double flops) {
  HYLO_CHECK(flops >= 0.0 && m.flops_per_s > 0.0, "bad compute args");
  return flops / m.flops_per_s;
}

double train_step_flops(index_t params, index_t local_batch) {
  HYLO_CHECK(params >= 0 && local_batch >= 0, "bad step-flop args");
  return 6.0 * static_cast<double>(params) * static_cast<double>(local_batch);
}

}  // namespace hylo
