#include "hylo/dist/event_sim.hpp"

#include <algorithm>

#include "hylo/ckpt/snapshot.hpp"

namespace hylo {

EventTimeline::EventTimeline(index_t world) : world_(world) {
  HYLO_CHECK(world >= 1, "timeline world must be >= 1");
  clocks_.assign(static_cast<std::size_t>(world), 0.0);
}

void EventTimeline::set_world(index_t world) {
  HYLO_CHECK(world >= 1, "timeline world must be >= 1");
  const double now = max_clock();
  world_ = world;
  clocks_.resize(static_cast<std::size_t>(world), now);
}

double EventTimeline::rank_clock(index_t rank) const {
  HYLO_CHECK(rank >= 0 && rank < world_, "timeline rank out of range");
  return clocks_[static_cast<std::size_t>(rank)];
}

void EventTimeline::advance(index_t rank, double seconds) {
  HYLO_CHECK(rank >= 0 && rank < world_, "timeline rank out of range");
  HYLO_CHECK(seconds >= 0.0, "cannot advance a clock backwards");
  clocks_[static_cast<std::size_t>(rank)] += seconds;
}

double EventTimeline::max_clock() const {
  double mx = 0.0;
  for (const double c : clocks_) mx = std::max(mx, c);
  return mx;
}

void EventTimeline::barrier_at(double t) {
  for (double& c : clocks_) c = std::max(c, t);
}

TimelineEvent EventTimeline::issue(const std::string& section,
                                   double earliest_start_s, double duration_s,
                                   bool failed) {
  HYLO_CHECK(earliest_start_s >= 0.0 && duration_s >= 0.0,
             "bad timeline issue args");
  TimelineEvent ev;
  ev.seq = next_seq_++;
  ev.failed = failed;
  ev.section = section;
  if (failed) {
    // Lost collectives never occupied the wire: the handle carries the
    // would-have-started time so callers can still order degradations.
    ev.start_s = earliest_start_s;
    ev.ready_s = earliest_start_s;
  } else {
    ev.start_s = std::max(earliest_start_s, wire_busy_until_);
    ev.ready_s = ev.start_s + duration_s;
    wire_busy_until_ = ev.ready_s;
  }
  history_.push_back(ev);
  return ev;
}

double EventTimeline::horizon() const {
  return std::max(max_clock(), wire_busy_until_);
}

void EventTimeline::save(ckpt::ByteWriter& w) const {
  w.u64(static_cast<std::uint64_t>(world_));
  for (const double c : clocks_) w.f64(c);
  w.f64(wire_busy_until_);
  w.u64(next_seq_);
}

void EventTimeline::load(ckpt::ByteReader& r) {
  const index_t world = static_cast<index_t>(r.u64());
  HYLO_CHECK(world >= 1, "corrupt timeline section: world " << world);
  world_ = world;
  clocks_.assign(static_cast<std::size_t>(world), 0.0);
  for (double& c : clocks_) c = r.f64();
  wire_busy_until_ = r.f64();
  next_seq_ = r.u64();
  history_.clear();
}

bool completes_before(const TimelineEvent& a, const TimelineEvent& b) {
  if (a.ready_s != b.ready_s) return a.ready_s < b.ready_s;
  return a.seq < b.seq;
}

}  // namespace hylo
