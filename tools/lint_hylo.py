#!/usr/bin/env python3
"""Repo-invariant lint for the hylo source tree.

Rules (each failure prints `file:line: [rule] message` and the run exits 1):

  io          -- no std::cout / std::cerr / printf / fprintf inside src/
                 outside the obs/ subsystem. Telemetry goes through
                 hylo::obs; everything else must stay silent. Suppress a
                 deliberate use with a `hylo-lint: allow(io)` comment on the
                 line.
  randomness  -- no rand() / srand() / std::random_device / time() /
                 clock() / <random> engines or distributions
                 (std::mt19937, std::uniform_*_distribution, ...) outside
                 common/rng.*. All randomness — including fault-injection
                 schedules — flows through hylo::Rng so runs are
                 replayable; wall-clock entropy and unseeded engines break
                 the determinism contract. Suppress with
                 `hylo-lint: allow(randomness)`.
  pragma_once -- every header under src/ starts with `#pragma once`.
  write_set   -- every par::parallel_for / par::parallel_reduce call site in
                 src/ (outside par/ and audit/ themselves) declares its
                 output footprint: the call's argument span must mention
                 `audit::` (a WriteSet helper, a Footprint lambda, or an
                 explicit `audit::unchecked(...)` opt-out).
  kernel_footprint -- parallel_for / parallel_reduce sites in the dense
                 kernel code (tensor/ and linalg/) must declare a *checked*
                 footprint: `audit::unchecked(...)` is forbidden there.
                 Every GEMM-family kernel writes a row/element block or a
                 triangular tail, all expressible as WriteSet spans — an
                 opt-out in that code hides exactly the overlap bugs the
                 auditor exists to catch (packed edge tiles, gram mirrors).
  metric_name -- obs metric names passed to counter(" / gauge(" /
                 histogram(" literals follow `subsystem/name`
                 (lowercase, at least one '/').
  ckpt_io     -- no raw std::ofstream outside the ckpt/ and obs/
                 subsystems. Durable artifacts (weights, run snapshots)
                 must be written through ckpt::AtomicFile (tmp + rename +
                 CRC) so a crash mid-write can never clobber the previous
                 file with a torn one. Suppress a deliberately non-atomic
                 write with `hylo-lint: allow(ckpt_io)`.
  health_catalogue -- every literal metric name containing `/health/` names
                 a probe registered in the catalogue block of
                 include/hylo/obs/health.hpp, and every `obs/alerts/` metric
                 names an alert rule from include/hylo/obs/alerts.hpp (or
                 the engine's own fired/critical counters). The catalogues
                 are the contract hylo_report and DESIGN.md §12 document;
                 an unregistered name is a typo or an undocumented probe.

Usage: lint_hylo.py [--root DIR]   (default: <repo>/src next to this script)
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

HEADER_EXT = {".hpp", ".h"}
SOURCE_EXT = {".cpp", ".cc", ".cxx"} | HEADER_EXT

IO_RE = re.compile(r"std::cout|std::cerr|\bprintf\s*\(|\bfprintf\s*\(")
RAND_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|\btime\s*\(|\bclock\s*\(|"
    r"std::mt19937|std::minstd_rand|std::default_random_engine|"
    r"std::uniform_(?:int|real)_distribution|std::bernoulli_distribution")
PARALLEL_RE = re.compile(r"\bparallel_(?:for|reduce)\s*\(")
OFSTREAM_RE = re.compile(r"std::ofstream")
METRIC_RE = re.compile(r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_.\-]+)+$")
ALLOW_RE = re.compile(r"hylo-lint:\s*allow\(([a-z_,\s]+)\)")


def load_catalogue(path: pathlib.Path, marker: str) -> frozenset[str]:
    """String literals between `hylo-<marker>-catalogue-begin/-end` comment
    markers in a header. Missing file or markers -> empty set, so every
    /health/ or obs/alerts/ metric in such a tree fails the rule (the
    catalogue is part of the contract, not optional)."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return frozenset()
    begin = text.find(f"hylo-{marker}-catalogue-begin")
    end = text.find(f"hylo-{marker}-catalogue-end")
    if begin < 0 or end < begin:
        return frozenset()
    return frozenset(re.findall(r'"([a-z0-9_]+)"', text[begin:end]))


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return m is not None and rule in {t.strip() for t in m.group(1).split(",")}


def strip_comments_keep_lines(text: str) -> str:
    """Remove // and /* */ comment bodies but preserve line numbering, so
    commented-out code never trips the content rules. Allow tags are read
    from the raw line before stripping."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state == "string":
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == '"':
                state = "code"
            out.append(c)
        else:  # char literal
            if c == "\\":
                out.append(c)
                if nxt:
                    out.append(nxt)
                    i += 2
                    continue
            elif c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def call_span(code: str, open_paren: int) -> str:
    """The argument text of a call, from its '(' to the matching ')'."""
    depth = 0
    for j in range(open_paren, len(code)):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                return code[open_paren : j + 1]
    return code[open_paren:]  # unbalanced: fall back to rest of file


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.failures: list[str] = []
        obs_inc = root / "include" / "hylo" / "obs"
        self.probe_catalogue = load_catalogue(obs_inc / "health.hpp", "probe")
        # The alert engine's own bookkeeping counters ride on the rule set.
        self.alert_catalogue = load_catalogue(
            obs_inc / "alerts.hpp", "alert") | {"fired", "critical"}

    def fail(self, path: pathlib.Path, line: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root.parent) if self.root.parent in path.parents \
            else path
        self.failures.append(f"{rel}:{line}: [{rule}] {msg}")

    def lint_file(self, path: pathlib.Path) -> None:
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        code = strip_comments_keep_lines(raw)
        code_lines = code.splitlines()
        rel = path.relative_to(self.root).as_posix()

        in_obs = rel.startswith("obs/") or "/obs/" in f"/{rel}"
        in_rng = pathlib.Path(rel).name.startswith("rng.")
        in_par = rel.startswith("par/") or "/par/" in f"/{rel}"
        in_audit = rel.startswith("audit/") or "/audit/" in f"/{rel}"
        in_ckpt = rel.startswith("ckpt/") or "/ckpt/" in f"/{rel}"

        if path.suffix in HEADER_EXT:
            first = next(
                (ln for ln in raw_lines if ln.strip()), "")
            if first.strip() != "#pragma once":
                self.fail(path, 1, "pragma_once",
                          "header must start with '#pragma once'")

        for i, ln in enumerate(code_lines, start=1):
            raw_ln = raw_lines[i - 1] if i <= len(raw_lines) else ""
            if not in_obs and IO_RE.search(ln) and not allowed(raw_ln, "io"):
                self.fail(path, i, "io",
                          "direct console IO outside hylo::obs "
                          "(use obs, or annotate 'hylo-lint: allow(io)')")
            if not in_rng and RAND_RE.search(ln) \
                    and not allowed(raw_ln, "randomness"):
                self.fail(path, i, "randomness",
                          "non-hylo::Rng randomness/wall-clock entropy "
                          "(use hylo::Rng, or annotate "
                          "'hylo-lint: allow(randomness)')")
            if not in_ckpt and not in_obs and OFSTREAM_RE.search(ln) \
                    and not allowed(raw_ln, "ckpt_io"):
                self.fail(path, i, "ckpt_io",
                          "raw std::ofstream outside hylo::ckpt/hylo::obs "
                          "(write through ckpt::AtomicFile for crash "
                          "safety, or annotate 'hylo-lint: allow(ckpt_io)')")
            for m in METRIC_RE.finditer(ln):
                name = m.group(1)
                if not METRIC_NAME_RE.match(name):
                    self.fail(path, i, "metric_name",
                              f"metric name '{name}' does not follow "
                              "'subsystem/name' (lowercase, '/'-separated)")
                leaf = name.rsplit("/", 1)[-1]
                if "/health/" in name and leaf not in self.probe_catalogue:
                    self.fail(path, i, "health_catalogue",
                              f"health probe '{leaf}' is not registered in "
                              "the probe catalogue "
                              "(include/hylo/obs/health.hpp)")
                if name.startswith("obs/alerts/") \
                        and leaf not in self.alert_catalogue:
                    self.fail(path, i, "health_catalogue",
                              f"alert metric '{leaf}' is not registered in "
                              "the alert-rule catalogue "
                              "(include/hylo/obs/alerts.hpp)")

        in_kernel = rel.startswith(("tensor/", "linalg/")) \
            or "/tensor/" in f"/{rel}" or "/linalg/" in f"/{rel}"
        if not in_par and not in_audit:
            for m in PARALLEL_RE.finditer(code):
                line_no = code.count("\n", 0, m.start()) + 1
                span = call_span(code, m.end() - 1)
                if "audit::" not in span:
                    self.fail(path, line_no, "write_set",
                              f"{m.group(0).rstrip('(').strip()} call site "
                              "declares no write set: pass an "
                              "audit::Footprint (e.g. audit::row_block(c)) "
                              "or an explicit audit::unchecked(\"why\")")
                elif in_kernel and "audit::unchecked" in span:
                    self.fail(path, line_no, "kernel_footprint",
                              "kernel code (tensor/, linalg/) must declare "
                              "a checked footprint — audit::unchecked is "
                              "forbidden here; express the write set with "
                              "WriteSet spans (row_block, add_row_tail, ...)")

    def run(self) -> int:
        files = sorted(p for p in self.root.rglob("*")
                       if p.suffix in SOURCE_EXT and p.is_file())
        if not files:
            print(f"lint_hylo: no sources under {self.root}", file=sys.stderr)
            return 2
        for f in files:
            self.lint_file(f)
        for msg in self.failures:
            print(msg)
        print(f"lint_hylo: {len(files)} files, {len(self.failures)} "
              f"violation(s)")
        return 1 if self.failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent
                    / "src",
                    help="tree to lint (default: repo src/)")
    args = ap.parse_args()
    return Linter(args.root.resolve()).run()


if __name__ == "__main__":
    sys.exit(main())
