#!/usr/bin/env python3
"""Compatibility shim: the PR-3 regex linter grew into tools/hylo_analyze.

Same contract as before (exit 0 clean / 1 violations / 2 usage error,
`--root DIR` to point at a tree); everything else — the rule catalogue,
suppression grammar, baseline, SARIF output — lives in the package.
Prefer `python3 tools/hylo_analyze` directly; this entry point stays for
muscle memory and old CI scripts.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from hylo_analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
