// Fixture: a pointer-keyed map is fine as a lookup structure — only
// iteration into a serialization sink is address-order dependent.
#include <map>

namespace fix {

struct Layer;

class Snapshot {
 public:
  int total() const {
    int s = 0;
    for (const auto& kv : ids_) s += kv.second;
    return s;
  }

  int id_of(const Layer* l) const {
    const auto it = ids_.find(l);
    return it == ids_.end() ? -1 : it->second;
  }

 private:
  std::map<const Layer*, int> ids_;
};

}  // namespace fix
