// Fixture: iterating a pointer-keyed map into a serialization sink writes
// address-ordered bytes — must be flagged.
#include <map>
#include <ostream>

namespace fix {

struct Layer;

class Snapshot {
 public:
  void dump(std::ostream& os) const {
    for (const auto& kv : ids_) os << kv.second << "\n";
  }

 private:
  std::map<const Layer*, int> ids_;
};

}  // namespace fix
