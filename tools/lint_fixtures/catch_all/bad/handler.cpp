// Fixture: a bare catch (...) that swallows must be flagged.
namespace fix {

int risky();

int safe_default() {
  try {
    return risky();
  } catch (...) {
    return -1;
  }
}

}  // namespace fix
