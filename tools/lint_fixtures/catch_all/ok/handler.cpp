// Fixture: catch (...) is fine when it rethrows, captures the exception,
// or carries an audited allow on the catch line.
#include <exception>

namespace fix {

int risky();

int rethrows() {
  try {
    return risky();
  } catch (...) {
    throw;
  }
}

std::exception_ptr captures() {
  try {
    risky();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

int audited_swallow() {
  try {
    return risky();
  } catch (...) {  // hylo-lint: allow(catch_all: fixture demonstrates an audited swallow with a reason)
    return -1;
  }
}

}  // namespace fix
