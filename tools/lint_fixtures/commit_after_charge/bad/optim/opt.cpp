// Fixture: two commit-after-charge violations — an update_curvature with no
// region markers at all, and one whose scratch region mutates committed
// state before the commit region opens.
#include <cstddef>
#include <vector>

namespace fix {

struct State {
  std::vector<double> a;
  int staleness = 0;
};

class Bare {
 public:
  bool update_curvature(int step);

 private:
  double damping_ = 1e-3;
};

bool Bare::update_curvature(int step) {
  damping_ += static_cast<double>(step);
  return true;
}

class Eager {
 public:
  bool update_curvature(int step);

 private:
  std::vector<State> layers_;
  double damping_ = 1e-3;
};

bool Eager::update_curvature(int step) {
  // hylo-scratch-begin(eager_update)
  std::vector<State> cand(layers_.size());
  for (auto& c : cand) c.a.assign(4, static_cast<double>(step));
  damping_ = damping_ * 0.5;
  // hylo-commit-begin(eager_update)
  for (std::size_t l = 0; l < cand.size(); ++l) layers_[l] = cand[l];
  // hylo-commit-end(eager_update)
  // hylo-scratch-end(eager_update)
  return true;
}

}  // namespace fix
