// Fixture: the blessed shape — candidates are computed into locals inside
// the scratch region and land in committed state only inside the commit
// region, after every throwing step is behind us.
#include <cstddef>
#include <vector>

namespace fix {

struct State {
  std::vector<double> a;
  int staleness = 0;
};

class Careful {
 public:
  bool update_curvature(int step);

 private:
  std::vector<State> layers_;
  double damping_ = 1e-3;
};

bool Careful::update_curvature(int step) {
  // hylo-scratch-begin(careful_update)
  std::vector<State> cand(layers_.size());
  for (auto& c : cand) c.a.assign(4, static_cast<double>(step));
  const double next_damping = damping_ * 0.5;
  // hylo-commit-begin(careful_update)
  damping_ = next_damping;
  for (std::size_t l = 0; l < cand.size(); ++l) {
    State& st = layers_[l];
    st = cand[l];
    st.staleness = 0;
  }
  // hylo-commit-end(careful_update)
  // hylo-scratch-end(careful_update)
  return true;
}

}  // namespace fix
