// Fixture: the blessed patterns inside a parallel body — default-construct
// then resize, and reference bindings to preallocated scratch — stay clean.
#include <cstddef>
#include <vector>

namespace fix {

using index_t = long;

template <typename Fn>
void parallel_for(index_t b, index_t e, index_t grain, Fn fn);

thread_local std::vector<double> tl_scratch;

void work(std::vector<double>& out) {
  parallel_for(0, 64, 8, [&](index_t b, index_t e) {
    std::vector<double>& buf = tl_scratch;
    buf.resize(static_cast<std::size_t>(e - b));
    for (index_t i = b; i < e; ++i)
      out[static_cast<std::size_t>(i)] = buf[0];
  });
}

}  // namespace fix
