// Fixture: sized-container construction and operator new inside a
// parallel_for body must be flagged.
#include <cstddef>
#include <vector>

namespace fix {

using index_t = long;

template <typename Fn>
void parallel_for(index_t b, index_t e, index_t grain, Fn fn);

void work(std::vector<double>& out) {
  parallel_for(0, 64, 8, [&](index_t b, index_t e) {
    std::vector<double> tmp(static_cast<std::size_t>(e - b), 0.0);
    double* spill = new double[8];
    for (index_t i = b; i < e; ++i)
      out[static_cast<std::size_t>(i)] = tmp[0] + spill[0];
    delete[] spill;
  });
}

}  // namespace fix
