// Fixture: range-for over an unordered member must be flagged.
#include <unordered_map>

namespace fix {

class Opt {
 public:
  double norm() const {
    double s = 0.0;
    for (const auto& kv : sq_) s += kv.second * kv.second;
    return s;
  }

 private:
  std::unordered_map<int, double> sq_;
};

}  // namespace fix
