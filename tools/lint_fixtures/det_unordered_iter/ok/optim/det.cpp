// Fixture: a commutative fold over an unordered member is fine once the
// loop carries an audited allow; sorted-key traversal needs no waiver.
#include <algorithm>
#include <unordered_map>
#include <vector>

namespace fix {

class Opt {
 public:
  double norm() const {
    double s = 0.0;
    for (const auto& kv : sq_) s += kv.second * kv.second;  // hylo-lint: allow(det_unordered_iter: commutative sum of squares, order-independent)
    return s;
  }

  std::vector<int> sorted_keys() const {
    std::vector<int> keys;
    keys.reserve(sq_.size());
    for (auto it = sq_.begin(); it != sq_.end(); ++it)  // hylo-lint: allow(det_unordered_iter: key harvest is sorted below before any consumer sees it)
      keys.push_back(it->first);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

 private:
  std::unordered_map<int, double> sq_;
};

}  // namespace fix
