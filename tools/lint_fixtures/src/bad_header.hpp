// Synthetic lint fixture: a header that is missing `#pragma once` as its
// first directive (rule: pragma_once). Never compiled.
#ifndef FIXTURE_BAD_HEADER_HPP_
#define FIXTURE_BAD_HEADER_HPP_

namespace fixture {
struct Registry;
}

#endif
