// Synthetic lint fixture: every rule violated once. The `lint_fixture`
// ctest case runs lint_hylo.py --root over this tree and REQUIRES a
// nonzero exit (WILL_FAIL) — if the linter ever stops catching these, CI
// goes red. This file is never compiled.
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>

#include "bad_header.hpp"

namespace fixture {

void violate_io() {
  std::cout << "direct console IO\n";        // rule: io
  printf("printf too\n");                    // rule: io
}

int violate_randomness() {
  srand(static_cast<unsigned>(time(nullptr)));  // rule: randomness (x2)
  return rand();                                // rule: randomness
}

double violate_std_random() {
  std::mt19937 gen(42);                              // rule: randomness
  std::uniform_real_distribution<double> dist(0, 1); // rule: randomness
  return dist(gen);
}

void violate_write_set(double* data, long n) {
  // rule: write_set — no audit::Footprint / audit::unchecked in the span.
  par::parallel_for(
      0, n, 1,
      [&](long b, long e) {
        for (long i = b; i < e; ++i) data[i] = 0.0;
      },
      "fixture/undeclared");
}

void violate_ckpt_io() {
  std::ofstream ckpt("model.ckpt");  // rule: ckpt_io — not an AtomicFile
  ckpt << "torn on crash";
}

void violate_metric_name(Registry& reg) {
  reg.counter("BadMetricName");     // rule: metric_name — no subsystem/
  reg.gauge("optim/Upper/Case");    // rule: metric_name — uppercase
}

void violate_health_catalogue(Registry& reg) {
  // rule: health_catalogue — probe not in the health.hpp catalogue (this
  // fixture tree has no catalogue header at all, so the set is empty).
  reg.counter("optim/hylo/health/bogus_probe");
  // rule: health_catalogue — not an alert rule or engine counter.
  reg.counter("obs/alerts/not_a_rule");
}

}  // namespace fixture
