// Synthetic lint fixture: a parallel_for in kernel code (tensor/) that
// opts out of the write-set auditor with audit::unchecked — rule:
// kernel_footprint. Kernel write sets (row blocks, triangular tails) are
// always expressible as spans, so the opt-out is forbidden in tensor/ and
// linalg/ even though it satisfies the plain write_set rule. Never
// compiled.

namespace fixture {

void violate_kernel_footprint(double* c, long m) {
  // rule: kernel_footprint — checked footprint required in kernel code.
  par::parallel_for(
      0, m, 8,
      [&](long i0, long i1) {
        for (long i = i0; i < i1; ++i) c[i] = 0.0;
      },
      "tensor/bad_kernel", audit::unchecked("rows are disjoint, trust me"));
}

}  // namespace fixture
