// Fixture: literal-zero guards are IEEE-exact and exempt; a deliberate
// exact compare carries an allow on the comparison line.
namespace fix {

bool is_zero(double x) { return x == 0.0; }

bool is_set(double x) {
  return x != 0.0 && x == 1.0;  // hylo-lint: allow(float_compare: sentinel assigned verbatim upstream, exact by construction)
}

bool int_compare(int n) { return n == 4; }

}  // namespace fix
