// Fixture: exact equality against nonzero float literals must be flagged.
namespace fix {

bool at_half(double x) { return x == 0.5; }

bool not_two(float y) { return y != 2.0f; }

}  // namespace fix
