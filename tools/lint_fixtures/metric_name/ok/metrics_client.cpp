// Fixture: well-formed subsystem/name metric names, including a literal
// wrapped across lines — concatenation happens before the check, so
// wrapping alone is not a violation.
namespace fix {

struct Registry {
  int& counter(const char* name);
  int& gauge(const char* name);
};

void emit(Registry& reg) {
  reg.counter("optim/refresh.calls");
  reg.gauge(
      "optim/"
      "refresh.seconds");
}

}  // namespace fix
