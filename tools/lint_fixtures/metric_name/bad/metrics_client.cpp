// Fixture: bad metric names — including the wrapped-literal form that the
// old single-line regex linter could not see (regression for the token-
// stream rewrite: adjacent string literals concatenate before the check).
namespace fix {

struct Registry {
  int& counter(const char* name);
  int& gauge(const char* name);
};

void emit(Registry& reg) {
  reg.counter("BadName");
  reg.gauge(
      "optim/refresh"
      ".CALLS");
}

}  // namespace fix
