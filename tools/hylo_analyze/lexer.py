"""C++-aware lexer for hylo_analyze.

Not a full C++ front end — a line-preserving token stream good enough for
the repo's invariant rules. Handles // and /* */ comments, ordinary and
raw string literals (R"delim(...)delim"), char literals, preprocessor
lines, and multi-character punctuators. Comments are captured separately
(per line) so suppression tags and region markers can be read from them;
string literals become single tokens with their decoded text preserved so
metric-name rules survive line wrapping and adjacent-literal
concatenation.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

# Longest-match punctuator table. Order within each length bucket does not
# matter; lookup tries 3-char, then 2-char, then 1-char.
_PUNCT3 = {"<<=", ">>=", "->*", "...", "<=>"}
_PUNCT2 = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
           "##"}

_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_STR_PREFIXES = {"u8", "u", "U", "L"}  # optionally followed by R


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str   # 'id' | 'num' | 'str' | 'char' | 'punct' | 'pp'
    text: str   # source text ('str' carries the *decoded* literal value)
    line: int   # 1-based line of the token's first character


@dataclasses.dataclass(frozen=True)
class Comment:
    line: int   # 1-based line this comment text sits on
    text: str   # comment body for this line (no // or /* */ fences)


@dataclasses.dataclass
class LexedFile:
    tokens: list[Token]
    comments: list[Comment]          # one entry per comment *line*
    stripped_lines: list[str]        # comments removed, strings blanked
    raw_lines: list[str]


def _decode_string(body: str) -> str:
    """Best-effort unescape of a narrow string literal body."""
    out: list[str] = []
    i = 0
    while i < len(body):
        c = body[i]
        if c == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            out.append({"n": "\n", "t": "\t", "r": "\r", "0": "\0"}.get(
                nxt, nxt))
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Lexer:
    def __init__(self, text: str):
        self.text = text
        self.n = len(text)
        self.i = 0
        self.line = 1
        self.tokens: list[Token] = []
        self.comments: list[Comment] = []
        # Stripped view: same shape as the source, with comment bodies and
        # string/char contents replaced by spaces (delimiters kept).
        self._stripped: list[str] = []

    # -- low-level helpers -------------------------------------------------

    def _emit(self, ch: str) -> None:
        self._stripped.append(ch)

    def _advance(self, keep: bool) -> None:
        c = self.text[self.i]
        if c == "\n":
            self.line += 1
            self._emit("\n")
        else:
            self._emit(c if keep else " ")
        self.i += 1

    def _comment_line(self, start_line: int, body: str) -> None:
        for off, part in enumerate(body.split("\n")):
            self.comments.append(Comment(start_line + off, part))

    # -- scanners ----------------------------------------------------------

    def _line_comment(self) -> None:
        start = self.i
        start_line = self.line
        self._emit(" ")
        self._emit(" ")
        self.i += 2
        while self.i < self.n and self.text[self.i] != "\n":
            self._advance(keep=False)
        self._comment_line(start_line, self.text[start + 2:self.i])

    def _block_comment(self) -> None:
        start = self.i
        start_line = self.line
        self._emit(" ")
        self._emit(" ")
        self.i += 2
        while self.i < self.n:
            if self.text.startswith("*/", self.i):
                body = self.text[start + 2:self.i]
                self._emit(" ")
                self._emit(" ")
                self.i += 2
                self._comment_line(start_line, body)
                return
            self._advance(keep=False)
        self._comment_line(start_line, self.text[start + 2:self.i])

    def _raw_string(self, start_line: int) -> None:
        # self.i sits on the R of R"delim( ... )delim"
        self._emit(" ")
        self.i += 1  # R
        self._emit('"')
        self.i += 1  # "
        d_start = self.i
        while self.i < self.n and self.text[self.i] != "(":
            self._advance(keep=False)
        delim = self.text[d_start:self.i]
        if self.i < self.n:
            self._advance(keep=False)  # (
        closer = ")" + delim + '"'
        end = self.text.find(closer, self.i)
        if end < 0:
            end = self.n
        body = self.text[self.i:end]
        while self.i < min(end + len(closer), self.n):
            keep = self.text[self.i] == '"' and self.i == end + len(closer) - 1
            self._advance(keep=keep)
        self.tokens.append(Token("str", body, start_line))

    def _string(self, start_line: int) -> None:
        self._emit('"')
        self.i += 1
        body_start = self.i
        while self.i < self.n:
            c = self.text[self.i]
            if c == "\\" and self.i + 1 < self.n:
                self._advance(keep=False)
                self._advance(keep=False)
                continue
            if c == '"':
                body = self.text[body_start:self.i]
                self._emit('"')
                self.i += 1
                self.tokens.append(
                    Token("str", _decode_string(body), start_line))
                return
            if c == "\n":  # unterminated on this line; bail out gracefully
                break
            self._advance(keep=False)
        self.tokens.append(
            Token("str", _decode_string(self.text[body_start:self.i]),
                  start_line))

    def _char(self, start_line: int) -> None:
        self._emit("'")
        self.i += 1
        body_start = self.i
        while self.i < self.n:
            c = self.text[self.i]
            if c == "\\" and self.i + 1 < self.n:
                self._advance(keep=False)
                self._advance(keep=False)
                continue
            if c == "'":
                self.tokens.append(
                    Token("char", self.text[body_start:self.i], start_line))
                self._emit("'")
                self.i += 1
                return
            if c == "\n":
                break
            self._advance(keep=False)
        self.tokens.append(
            Token("char", self.text[body_start:self.i], start_line))

    def _identifier(self) -> None:
        start = self.i
        start_line = self.line
        while self.i < self.n and self.text[self.i] in _ID_CONT:
            self._advance(keep=True)
        name = self.text[start:self.i]
        # String-literal prefix (u8"...", LR"(...)", ...)?
        if self.i < self.n:
            rest = name
            is_raw = rest.endswith("R")
            if is_raw:
                rest = rest[:-1]
            if (rest in _STR_PREFIXES or (is_raw and rest == "")) \
                    and self.text[self.i] == '"':
                if is_raw:
                    self.i -= 1  # back onto the R for _raw_string
                    self._stripped.pop()
                    self._raw_string(start_line)
                else:
                    self._string(start_line)
                return
        self.tokens.append(Token("id", name, start_line))

    def _number(self) -> None:
        start = self.i
        start_line = self.line
        while self.i < self.n and (self.text[self.i] in _ID_CONT
                                   or self.text[self.i] in ".'"
                                   or (self.text[self.i] in "+-"
                                       and self.text[self.i - 1] in "eEpP")):
            self._advance(keep=True)
        self.tokens.append(Token("num", self.text[start:self.i], start_line))

    def _preprocessor(self) -> None:
        # Swallow a whole (possibly continued) preprocessor line as one token.
        start = self.i
        start_line = self.line
        while self.i < self.n:
            c = self.text[self.i]
            if c == "\n":
                if self.text[self.i - 1] == "\\":
                    self._advance(keep=True)
                    continue
                break
            if self.text.startswith("//", self.i) \
                    or self.text.startswith("/*", self.i):
                break
            self._advance(keep=True)
        self.tokens.append(Token("pp", self.text[start:self.i], start_line))

    # -- driver ------------------------------------------------------------

    def run(self) -> LexedFile:
        at_line_start = True
        while self.i < self.n:
            c = self.text[self.i]
            if c == "\n":
                self._advance(keep=True)
                at_line_start = True
                continue
            if c in " \t\r":
                self._advance(keep=True)
                continue
            if self.text.startswith("//", self.i):
                self._line_comment()
                continue
            if self.text.startswith("/*", self.i):
                self._block_comment()
                continue
            if at_line_start and c == "#":
                self._preprocessor()
                at_line_start = False
                continue
            at_line_start = False
            if c == '"':
                self._string(self.line)
                continue
            if c == "'":
                self._char(self.line)
                continue
            if c == "R" and self.text.startswith('R"', self.i):
                self._raw_string(self.line)
                continue
            if c in _ID_START:
                self._identifier()
                continue
            if c in _DIGITS or (c == "." and self.i + 1 < self.n
                                and self.text[self.i + 1] in _DIGITS):
                self._number()
                continue
            # punctuator, longest match first
            for width in (3, 2):
                cand = self.text[self.i:self.i + width]
                if (width == 3 and cand in _PUNCT3) \
                        or (width == 2 and cand in _PUNCT2):
                    ln = self.line
                    for _ in range(width):
                        self._advance(keep=True)
                    self.tokens.append(Token("punct", cand, ln))
                    break
            else:
                self.tokens.append(Token("punct", c, self.line))
                self._advance(keep=True)
        stripped = "".join(self._stripped).splitlines()
        raw = self.text.splitlines()
        while len(stripped) < len(raw):
            stripped.append("")
        return LexedFile(self.tokens, self.comments, stripped, raw)


def lex(text: str) -> LexedFile:
    return Lexer(text).run()


def match_paren(tokens: list[Token], open_idx: int) -> int:
    """Index of the ')' matching tokens[open_idx] == '('; len(tokens)-1 if
    unbalanced."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
                if depth == 0:
                    return j
    return len(tokens) - 1


def match_brace(tokens: list[Token], open_idx: int) -> int:
    """Index of the '}' matching tokens[open_idx] == '{'; len(tokens)-1 if
    unbalanced."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                if depth == 0:
                    return j
    return len(tokens) - 1


def match_angle(tokens: list[Token], open_idx: int) -> int:
    """Index of the '>' matching tokens[open_idx] == '<' in a template
    argument list. Heuristic: bails (returns open_idx) on tokens that cannot
    appear in a type argument, so `a < b` comparisons are not chased."""
    depth = 0
    for j in range(open_idx, min(open_idx + 64, len(tokens))):
        t = tokens[j]
        if t.kind == "punct":
            if t.text == "<":
                depth += 1
            elif t.text == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif t.text == ">>":
                depth -= 2
                if depth <= 0:
                    return j
            elif t.text in {";", "{", "}", "==", "!=", "&&", "||"}:
                return open_idx
        elif t.kind == "str":
            return open_idx
    return open_idx


def iter_lines(tokens: list[Token]) -> Iterator[tuple[int, list[Token]]]:
    """Group tokens by source line."""
    if not tokens:
        return
    cur = tokens[0].line
    bucket: list[Token] = []
    for t in tokens:
        if t.line != cur:
            yield cur, bucket
            cur, bucket = t.line, []
        bucket.append(t)
    if bucket:
        yield cur, bucket
