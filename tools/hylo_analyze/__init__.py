"""hylo_analyze — repo-invariant static analyzer for the hylo tree.

Grown out of tools/lint_hylo.py (PR 3): a C++-aware token-stream lexer,
a rule engine with reasoned line/block suppressions, a checked-in
baseline, and text + SARIF 2.1.0 output. DESIGN.md §14 is the rule
catalogue.
"""

from .analyzer import Analyzer  # noqa: F401
from .rules import RULES  # noqa: F401
