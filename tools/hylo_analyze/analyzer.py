"""Driver: walk a tree, run every rule, apply suppressions + baseline."""

from __future__ import annotations

import pathlib

from . import engine, rules
from .engine import Finding


class Analyzer:
    def __init__(self, root: pathlib.Path,
                 only_rules: set[str] | None = None):
        self.root = root.resolve()
        self.only_rules = only_rules
        self.files: list[engine.FileContext] = []
        self.findings: list[Finding] = []

    def _files(self) -> list[pathlib.Path]:
        return sorted(p for p in self.root.rglob("*")
                      if p.suffix in engine.SOURCE_EXT and p.is_file())

    def run(self) -> list[Finding]:
        paths = self._files()
        contexts = [engine.build_context(p, p.relative_to(self.root)
                                         .as_posix())
                    for p in paths]
        self.files = contexts
        tree = rules.build_tree_context(self.root, contexts)
        for ctx in contexts:
            def report(rule: str, line: int, msg: str,
                       _ctx: engine.FileContext = ctx) -> None:
                if self.only_rules is not None \
                        and rule not in self.only_rules:
                    return
                if line is None:
                    line = 1
                if _ctx.suppressed(rule, line):
                    return
                self.findings.append(
                    Finding(rule, _ctx.path, _ctx.rel, line, msg))
            for check in rules.ALL_CHECKS:
                check(ctx, tree, report)
        self.findings.sort(key=lambda f: (f.rel, f.line, f.rule))
        return self.findings

    def line_text(self, f: Finding) -> str:
        for ctx in self.files:
            if ctx.rel == f.rel:
                if 1 <= f.line <= len(ctx.lex.stripped_lines):
                    return ctx.lex.stripped_lines[f.line - 1]
                return ""
        return ""

    def fingerprinted(self) -> list[tuple[Finding, str]]:
        return engine.finding_fingerprints(self.findings, self.line_text)
