"""SARIF 2.1.0 output for hylo_analyze.

One run, one driver, one result per (non-baselined) finding. Artifact
URIs are repo-relative when the scan root sits inside the repo so GitHub
code-scanning annotates PR files directly; `originalUriBaseIds` carries
the absolute root for other consumers.
"""

from __future__ import annotations

import json
import pathlib

from .engine import Finding
from .rules import RULES

SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_VERSION = "1.0.0"
INFO_URI = "https://example.invalid/hylo/tools/hylo_analyze"


def _repo_root(start: pathlib.Path) -> pathlib.Path | None:
    for p in [start] + list(start.parents):
        if (p / ".git").exists():
            return p
    return None


def build(findings: list[tuple[Finding, str]],
          scan_root: pathlib.Path) -> dict:
    """`findings` pairs each Finding with its fingerprint (baselined ones
    excluded by the caller)."""
    repo = _repo_root(scan_root)
    rule_ids = sorted(RULES)
    rule_index = {r: i for i, r in enumerate(rule_ids)}
    rules_meta = [{
        "id": rid,
        "name": "".join(w.capitalize() for w in rid.split("_")),
        "shortDescription": {"text": RULES[rid][0]},
        "fullDescription": {"text": RULES[rid][1]},
        "help": {"text": RULES[rid][1]},
        "defaultConfiguration": {"level": "error"},
    } for rid in rule_ids]

    results = []
    for f, fp in findings:
        abs_path = f.path.resolve()
        if repo is not None and repo in abs_path.parents:
            uri = abs_path.relative_to(repo).as_posix()
        else:
            uri = f.rel
        results.append({
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri, "uriBaseId": "REPOROOT"},
                    "region": {"startLine": f.line},
                },
            }],
            "partialFingerprints": {"hyloAnalyze/v1": fp},
        })

    base = (repo or scan_root).resolve().as_uri()
    if not base.endswith("/"):
        base += "/"
    return {
        "$schema": SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "hylo_analyze",
                "informationUri": INFO_URI,
                "version": TOOL_VERSION,
                "rules": rules_meta,
            }},
            "originalUriBaseIds": {"REPOROOT": {"uri": base}},
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def write(path: pathlib.Path, findings: list[tuple[Finding, str]],
          scan_root: pathlib.Path) -> None:
    path.write_text(json.dumps(build(findings, scan_root), indent=2) + "\n",
                    encoding="utf-8")
