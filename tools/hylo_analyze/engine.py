"""Rule engine for hylo_analyze: findings, suppressions, baseline.

Suppression grammar (DESIGN.md §14), read from comments only:

  line form    // hylo-lint: allow(rule[, rule...]: reason text)
  block form   // hylo-lint: allow-begin(rule[, rule...]: reason text)
               ...
               // hylo-lint: allow-end(rule[, rule...])

A line-form allow suppresses matching findings on its own line. A block
form suppresses matching findings on every line between begin and end
(inclusive). The legacy reasonless spelling `allow(rule)` still parses,
but the `allow_reason` meta-rule reports it: every suppression in the
real tree must say why.

Baseline: a JSON file of finding fingerprints. A finding whose
fingerprint appears in the baseline is reported as "baselined" and does
not fail the run; anything else does. Fingerprints hash the rule, the
file-relative path, and the stripped text of the offending line (not the
line number), so unrelated edits above a baselined finding do not
invalidate it. An occurrence ordinal disambiguates identical lines.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import re
import sys
from collections import Counter

from . import lexer

HEADER_EXT = {".hpp", ".h"}
SOURCE_EXT = {".cpp", ".cc", ".cxx"} | HEADER_EXT

_ALLOW_RE = re.compile(
    r"hylo-lint:\s*allow(?P<form>-begin|-end)?\s*"
    r"\((?P<rules>[a-z0-9_,\s]+?)(?::(?P<reason>[^)]*))?\)")


@dataclasses.dataclass
class Finding:
    rule: str
    path: pathlib.Path          # absolute
    rel: str                    # path relative to scan root (posix)
    line: int
    message: str
    baselined: bool = False

    def render(self) -> str:
        tag = " (baselined)" if self.baselined else ""
        return f"{self.rel}:{self.line}: [{self.rule}]{tag} {self.message}"


@dataclasses.dataclass(frozen=True)
class Allow:
    rules: frozenset[str]
    line: int
    form: str                  # '' | '-begin' | '-end'
    has_reason: bool


@dataclasses.dataclass
class FileContext:
    """Everything a rule needs about one file."""
    path: pathlib.Path
    rel: str
    lex: lexer.LexedFile
    allows: list[Allow]
    # (rule, line) -> suppressed?  computed from line + block allows
    _line_allows: dict[int, set[str]] = dataclasses.field(default_factory=dict)
    _block_allows: list[tuple[int, int, frozenset[str]]] = \
        dataclasses.field(default_factory=list)

    # --- path domains (mirrors the PR-3 linter) ---
    @property
    def in_obs(self) -> bool:
        return self._in_dir("obs")

    @property
    def in_par(self) -> bool:
        return self._in_dir("par")

    @property
    def in_audit(self) -> bool:
        return self._in_dir("audit")

    @property
    def in_ckpt(self) -> bool:
        return self._in_dir("ckpt")

    @property
    def in_optim(self) -> bool:
        return self._in_dir("optim")

    @property
    def in_kernel(self) -> bool:
        return self._in_dir("tensor") or self._in_dir("linalg")

    @property
    def in_rng(self) -> bool:
        return pathlib.Path(self.rel).name.startswith("rng.")

    def _in_dir(self, d: str) -> bool:
        return self.rel.startswith(f"{d}/") or f"/{d}/" in f"/{self.rel}"

    @property
    def is_header(self) -> bool:
        return self.path.suffix in HEADER_EXT

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self._line_allows.get(line, set()):
            return True
        return any(b <= line <= e and rule in rules
                   for b, e, rules in self._block_allows)


def parse_allows(comments: list[lexer.Comment]) -> list[Allow]:
    out: list[Allow] = []
    for c in comments:
        for m in _ALLOW_RE.finditer(c.text):
            rules = frozenset(t.strip() for t in m.group("rules").split(",")
                              if t.strip())
            reason = (m.group("reason") or "").strip()
            out.append(Allow(rules, c.line, m.group("form") or "",
                             bool(reason)))
    return out


def build_context(path: pathlib.Path, rel: str) -> FileContext:
    text = path.read_text(encoding="utf-8", errors="replace")
    lx = lexer.lex(text)
    allows = parse_allows(lx.comments)
    ctx = FileContext(path, rel, lx, allows)
    open_blocks: dict[str, int] = {}
    for a in allows:
        if a.form == "":
            ctx._line_allows.setdefault(a.line, set()).update(a.rules)
        elif a.form == "-begin":
            for r in a.rules:
                open_blocks.setdefault(r, a.line)
        else:  # -end
            for r in a.rules:
                begin = open_blocks.pop(r, None)
                if begin is not None:
                    ctx._block_allows.append((begin, a.line, frozenset({r})))
    # Unclosed blocks run to EOF (the marker-hygiene rule reports them).
    for r, begin in open_blocks.items():
        ctx._block_allows.append(
            (begin, len(lx.raw_lines) or 1, frozenset({r})))
    return ctx


# --------------------------------------------------------------------------
# Baseline


def fingerprint(rule: str, rel: str, line_text: str, ordinal: int) -> str:
    h = hashlib.sha256(
        f"{rule}|{rel}|{line_text.strip()}".encode()).hexdigest()[:16]
    return f"{h}:{ordinal}"


def finding_fingerprints(findings: list[Finding],
                         line_text) -> list[tuple[Finding, str]]:
    """Pair each finding with its fingerprint. `line_text(f)` maps a finding
    to the stripped text of its line."""
    seen: Counter[str] = Counter()
    out: list[tuple[Finding, str]] = []
    for f in sorted(findings, key=lambda f: (f.rel, f.line, f.rule)):
        key = f"{f.rule}|{f.rel}|{line_text(f).strip()}"
        fp = fingerprint(f.rule, f.rel, line_text(f), seen[key])
        seen[key] += 1
        out.append((f, fp))
    return out


def load_baseline(path: pathlib.Path) -> set[str]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"hylo_analyze: cannot read baseline {path}: {exc}",
              file=sys.stderr)
        return set()
    return {e["fingerprint"] for e in data.get("entries", [])}


def write_baseline(path: pathlib.Path,
                   pairs: list[tuple[Finding, str]]) -> None:
    entries = [{"rule": f.rule, "path": f.rel, "line": f.line,
                "fingerprint": fp} for f, fp in pairs]
    doc = {"version": 1,
           "tool": "hylo_analyze",
           "comment": "Grandfathered findings. Fix and remove; do not add.",
           "entries": entries}
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
