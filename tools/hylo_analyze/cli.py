"""Command-line interface for hylo_analyze.

  python3 tools/hylo_analyze [--root DIR] [--baseline FILE]
                             [--write-baseline] [--sarif FILE]
                             [--rules r1,r2] [--list-rules]

Exit status: 0 clean (all findings baselined or none), 1 new findings,
2 usage/environment error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from . import engine, sarif
from .analyzer import Analyzer
from .rules import RULES


def main(argv: list[str] | None = None) -> int:
    here = pathlib.Path(__file__).resolve().parent
    ap = argparse.ArgumentParser(
        prog="hylo_analyze",
        description="hylo repo-invariant static analyzer")
    ap.add_argument("--root", type=pathlib.Path,
                    default=here.parent.parent / "src",
                    help="tree to analyze (default: repo src/)")
    ap.add_argument("--baseline", type=pathlib.Path, default=None,
                    help="baseline JSON of grandfathered fingerprints "
                         "(default: tools/hylo_analyze/baseline.json when "
                         "scanning the repo src/, else none)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write current findings to the baseline file and "
                         "exit 0")
    ap.add_argument("--sarif", type=pathlib.Path, default=None,
                    help="also emit SARIF 2.1.0 to this path")
    ap.add_argument("--rules", type=str, default=None,
                    help="comma-separated rule subset to run")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rid in sorted(RULES):
            print(f"{rid:<{width}}  {RULES[rid][0]}")
        return 0

    only = None
    if args.rules:
        only = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = only - set(RULES)
        if unknown:
            print(f"hylo_analyze: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = args.root.resolve()
    if not root.is_dir():
        print(f"hylo_analyze: no such directory: {root}", file=sys.stderr)
        return 2

    default_src = (here.parent.parent / "src").resolve()
    baseline_path = args.baseline
    if baseline_path is None and root == default_src:
        baseline_path = here / "baseline.json"

    an = Analyzer(root, only)
    an.run()
    if not an.files:
        print(f"hylo_analyze: no sources under {root}", file=sys.stderr)
        return 2

    pairs = an.fingerprinted()

    if args.write_baseline:
        target = baseline_path or (here / "baseline.json")
        engine.write_baseline(target, pairs)
        print(f"hylo_analyze: wrote {len(pairs)} fingerprint(s) to {target}")
        return 0

    baseline: set[str] = set()
    if baseline_path is not None and baseline_path.exists():
        baseline = engine.load_baseline(baseline_path)

    fresh: list[tuple[engine.Finding, str]] = []
    n_baselined = 0
    for f, fp in pairs:
        if fp in baseline:
            f.baselined = True
            n_baselined += 1
        else:
            fresh.append((f, fp))

    for f, _fp in pairs:
        print(f.render())

    if args.sarif is not None:
        sarif.write(args.sarif, fresh, root)

    print(f"hylo_analyze: {len(an.files)} files, {len(fresh)} violation(s)"
          + (f", {n_baselined} baselined" if n_baselined else ""))
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
