import pathlib
import sys

if __package__ in (None, ""):
    # Invoked as `python3 tools/hylo_analyze` (directory run): put tools/
    # on sys.path so the package imports resolve.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from hylo_analyze.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
