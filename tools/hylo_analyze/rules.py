"""Rule implementations for hylo_analyze.

Each rule is a function `check(ctx, tree, report)` where `ctx` is the
FileContext, `tree` the TreeContext (cross-file facts: container
declarations, metric catalogues), and `report(rule, line, msg)` records a
finding (suppressions and baseline are applied by the driver).

Rule ids, one-line summaries, and help text live in RULES; DESIGN.md §14
is the narrative catalogue.
"""

from __future__ import annotations

import dataclasses
import pathlib
import re

from . import engine, lexer
from .lexer import Token, match_angle, match_brace, match_paren

# --------------------------------------------------------------------------
# Rule registry (id -> (short description, help text)). SARIF rule metadata
# and --list-rules both render from here.

RULES: dict[str, tuple[str, str]] = {
    "io": (
        "direct console IO outside hylo::obs",
        "std::cout/std::cerr/printf/fprintf outside obs/. Telemetry goes "
        "through hylo::obs; everything else stays silent."),
    "randomness": (
        "non-hylo::Rng randomness or wall-clock entropy",
        "rand()/srand()/std::random_device/time()/clock()/<random> engines "
        "outside common/rng.*. All randomness flows through hylo::Rng so "
        "runs are replayable."),
    "pragma_once": (
        "header does not start with #pragma once",
        "Every header under src/ starts with #pragma once."),
    "write_set": (
        "parallel call site declares no write set",
        "Every par::parallel_for/parallel_reduce call site outside par/ and "
        "audit/ passes an audit:: footprint or an explicit "
        "audit::unchecked(\"why\")."),
    "kernel_footprint": (
        "audit::unchecked in dense-kernel code",
        "tensor/ and linalg/ parallel sites must declare a *checked* "
        "footprint; unchecked opt-outs there hide exactly the overlap bugs "
        "the auditor exists to catch."),
    "metric_name": (
        "metric name does not follow subsystem/name",
        "obs metric names passed to counter/gauge/histogram literals are "
        "lowercase with at least one '/'. Matched on the token stream, so "
        "wrapped or concatenated literals are still checked."),
    "ckpt_io": (
        "raw std::ofstream outside ckpt/ and obs/",
        "Durable artifacts are written through ckpt::AtomicFile "
        "(tmp + rename + CRC) so a crash mid-write cannot tear a file."),
    "health_catalogue": (
        "health/alert metric not in its catalogue",
        "Every /health/ metric leaf names a probe registered in "
        "include/hylo/obs/health.hpp, every obs/alerts/ leaf an alert rule "
        "from alerts.hpp."),
    "det_unordered_iter": (
        "iteration over unordered container",
        "Range-for or iterator loops over std::unordered_map/set visit "
        "elements in hash order, which varies with ASLR and libstdc++ "
        "version — a silent determinism break if the body feeds "
        "serialization, logging, comm, or non-commutative numerics. "
        "Traverse in net.param_blocks() order or a sorted key copy, or "
        "annotate the loop "
        "'hylo-lint: allow(det_unordered_iter: commutative — why)'."),
    "det_pointer_key": (
        "pointer-keyed container contents serialized",
        "Iterating a pointer-keyed map writes address-ordered bytes into a "
        "snapshot or run log; addresses change across runs under ASLR. Key "
        "the serialization on a stable id (param-block index) instead."),
    "commit_after_charge": (
        "committed state mutated outside a commit region",
        "Inside an optimizer's marked scratch region "
        "(// hylo-scratch-begin/end), member state that survives the "
        "update (trailing-underscore fields and references bound to them) "
        "may only be mutated inside a // hylo-commit-begin/end region — "
        "the PR-4 contract that a comm failure mid-refresh leaves the old "
        "factors intact (degrade to stale, never half-new)."),
    "catch_all": (
        "catch (...) swallows without rethrow/convert",
        "A catch (...) body must rethrow (throw; / rethrow_exception), "
        "capture via std::current_exception, or carry "
        "'hylo-lint: allow(catch_all: why swallowing is safe)'."),
    "float_compare": (
        "==/!= against a nonzero float literal",
        "Exact equality on floating values is almost never meaningful; "
        "compare against a tolerance. Comparisons against literal zero are "
        "exempt: IEEE-exact sparsity/sentinel guards (x == 0.0) are "
        "idiomatic in the kernels."),
    "hot_path_alloc": (
        "container constructed inside a parallel/microkernel body",
        "Constructing a sized container inside a parallel_for body or a "
        "packed-GEMM loop allocates per chunk per call. Hoist it, use the "
        "tl_scratch thread-local arena, or the default-construct + resize "
        "pattern the kernels use."),
    "allow_reason": (
        "suppression without a reason",
        "Every hylo-lint allow in the real tree says why: "
        "'hylo-lint: allow(rule: reason)'."),
    "marker_hygiene": (
        "malformed suppression or region markers",
        "allow-begin without allow-end, scratch/commit begin/end that do "
        "not pair up, or a commit region outside any scratch region."),
}

# --------------------------------------------------------------------------
# Tree-level context (facts gathered in a first pass over every file)

_CONTAINERS_UNORDERED = {"unordered_map", "unordered_set"}
_CONTAINERS_KEYED = {"unordered_map", "unordered_set", "map"}


@dataclasses.dataclass
class TreeContext:
    root: pathlib.Path
    # member names (trailing underscore) declared as unordered containers
    unordered_members: set[str] = dataclasses.field(default_factory=set)
    # same, pointer-keyed (any map kind)
    ptrkey_members: set[str] = dataclasses.field(default_factory=set)
    # per-file local/param names: rel -> set[str]
    unordered_locals: dict[str, set[str]] = \
        dataclasses.field(default_factory=dict)
    ptrkey_locals: dict[str, set[str]] = \
        dataclasses.field(default_factory=dict)
    probe_catalogue: frozenset[str] = frozenset()
    alert_catalogue: frozenset[str] = frozenset()


def _load_catalogue(path: pathlib.Path, marker: str) -> frozenset[str]:
    """String literals between hylo-<marker>-catalogue-begin/-end markers."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return frozenset()
    begin = text.find(f"hylo-{marker}-catalogue-begin")
    end = text.find(f"hylo-{marker}-catalogue-end")
    if begin < 0 or end < begin:
        return frozenset()
    return frozenset(re.findall(r'"([a-z0-9_]+)"', text[begin:end]))


def _container_decls(ctx: engine.FileContext, tree: TreeContext) -> None:
    """Collect names declared as unordered / pointer-keyed containers.

    Member names (trailing '_') go into the tree-wide sets — they are
    declared in headers and iterated in .cpp files. Other names stay
    file-local to keep short locals like 'm' from poisoning the tree."""
    toks = ctx.lex.tokens
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in _CONTAINERS_KEYED:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "<":
            continue
        close = match_angle(toks, i + 1)
        if close == i + 1:
            continue
        # pointer key: '*' in the first template argument
        depth, ptr_key = 0, False
        for j in range(i + 2, close):
            tj = toks[j]
            if tj.kind == "punct":
                if tj.text in "<([":
                    depth += 1
                elif tj.text in ">)]":
                    depth -= 1
                elif tj.text == "," and depth == 0:
                    break
                elif tj.text == "*" and depth == 0:
                    ptr_key = True
        # declared name: skip refs/pointers after the closing '>'
        j = close + 1
        while j < len(toks) and toks[j].kind == "punct" \
                and toks[j].text in {"&", "*", "&&"}:
            j += 1
        if j >= len(toks) or toks[j].kind != "id":
            continue
        name = toks[j].text
        if j + 1 < len(toks) and toks[j + 1].text == "(":
            continue  # function returning a container
        unordered = t.text in _CONTAINERS_UNORDERED
        if name.endswith("_"):
            if unordered:
                tree.unordered_members.add(name)
            if ptr_key:
                tree.ptrkey_members.add(name)
        else:
            if unordered:
                tree.unordered_locals.setdefault(ctx.rel, set()).add(name)
            if ptr_key:
                tree.ptrkey_locals.setdefault(ctx.rel, set()).add(name)


def build_tree_context(root: pathlib.Path,
                       contexts: list[engine.FileContext]) -> TreeContext:
    tree = TreeContext(root)
    obs_inc = root / "include" / "hylo" / "obs"
    tree.probe_catalogue = _load_catalogue(obs_inc / "health.hpp", "probe")
    tree.alert_catalogue = _load_catalogue(
        obs_inc / "alerts.hpp", "alert") | frozenset({"fired", "critical"})
    for ctx in contexts:
        _container_decls(ctx, tree)
    return tree


# --------------------------------------------------------------------------
# Legacy line rules (regex over the stripped view: comments removed,
# string/char contents blanked, line numbers preserved)

_IO_RE = re.compile(r"std::cout|std::cerr|\bprintf\s*\(|\bfprintf\s*\(")
_RAND_RE = re.compile(
    r"\brand\s*\(|\bsrand\s*\(|std::random_device|\btime\s*\(|\bclock\s*\(|"
    r"std::mt19937|std::minstd_rand|std::default_random_engine|"
    r"std::uniform_(?:int|real)_distribution|std::bernoulli_distribution")
_OFSTREAM_RE = re.compile(r"std::ofstream")
_METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(/[a-z0-9_.\-]+)+$")


def check_line_rules(ctx: engine.FileContext, tree: TreeContext,
                     report) -> None:
    del tree
    for i, ln in enumerate(ctx.lex.stripped_lines, start=1):
        if not ctx.in_obs and _IO_RE.search(ln):
            report("io", i,
                   "direct console IO outside hylo::obs (use obs, or "
                   "annotate 'hylo-lint: allow(io: why)')")
        if not ctx.in_rng and _RAND_RE.search(ln):
            report("randomness", i,
                   "non-hylo::Rng randomness/wall-clock entropy (use "
                   "hylo::Rng, or annotate "
                   "'hylo-lint: allow(randomness: why)')")
        if not ctx.in_ckpt and not ctx.in_obs and _OFSTREAM_RE.search(ln):
            report("ckpt_io", i,
                   "raw std::ofstream outside hylo::ckpt/hylo::obs (write "
                   "through ckpt::AtomicFile for crash safety, or annotate "
                   "'hylo-lint: allow(ckpt_io: why)')")


def check_pragma_once(ctx: engine.FileContext, tree: TreeContext,
                      report) -> None:
    del tree
    if not ctx.is_header:
        return
    first = next((ln for ln in ctx.lex.raw_lines if ln.strip()), "")
    if first.strip() != "#pragma once":
        report("pragma_once", 1, "header must start with '#pragma once'")


# --------------------------------------------------------------------------
# metric_name / health_catalogue on the token stream (fixes the wrapped-
# literal escape: adjacent and line-wrapped literals concatenate here)

def _metric_literals(ctx: engine.FileContext):
    toks = ctx.lex.tokens
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in {"counter", "gauge", "histogram"}:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        parts: list[str] = []
        j = i + 2
        first_line = None
        while j < len(toks) and toks[j].kind == "str":
            if first_line is None:
                first_line = toks[j].line
            parts.append(toks[j].text)
            j += 1
        if parts:
            yield first_line, "".join(parts)


def check_metric_names(ctx: engine.FileContext, tree: TreeContext,
                       report) -> None:
    for line, name in _metric_literals(ctx):
        if not _METRIC_NAME_RE.match(name):
            report("metric_name", line,
                   f"metric name '{name}' does not follow 'subsystem/name' "
                   "(lowercase, '/'-separated)")
        leaf = name.rsplit("/", 1)[-1]
        if "/health/" in name and leaf not in tree.probe_catalogue:
            report("health_catalogue", line,
                   f"health probe '{leaf}' is not registered in the probe "
                   "catalogue (include/hylo/obs/health.hpp)")
        if name.startswith("obs/alerts/") and leaf not in tree.alert_catalogue:
            report("health_catalogue", line,
                   f"alert metric '{leaf}' is not registered in the "
                   "alert-rule catalogue (include/hylo/obs/alerts.hpp)")


# --------------------------------------------------------------------------
# write_set / kernel_footprint / hot_path_alloc around parallel call sites

_HOT_CONTAINERS = {"vector", "deque", "list", "map", "set", "unordered_map",
                   "unordered_set", "string", "valarray",
                   "Matrix", "Tensor4"}
_PARALLEL = {"parallel_for", "parallel_reduce"}


def _parallel_spans(ctx: engine.FileContext):
    toks = ctx.lex.tokens
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in _PARALLEL \
                and i + 1 < len(toks) and toks[i + 1].text == "(":
            yield i, i + 1, match_paren(toks, i + 1)


def check_parallel_sites(ctx: engine.FileContext, tree: TreeContext,
                         report) -> None:
    del tree
    if ctx.in_par or ctx.in_audit:
        return
    toks = ctx.lex.tokens
    for name_i, op, cl in _parallel_spans(ctx):
        span = toks[op:cl + 1]
        has_audit = any(
            t.kind == "id" and t.text == "audit"
            and k + 1 < len(span) and span[k + 1].text == "::"
            for k, t in enumerate(span))
        unchecked = any(t.kind == "id" and t.text == "unchecked"
                        for t in span)
        if not has_audit:
            report("write_set", toks[name_i].line,
                   f"{toks[name_i].text} call site declares no write set: "
                   "pass an audit::Footprint (e.g. audit::row_block(c)) or "
                   "an explicit audit::unchecked(\"why\")")
        elif ctx.in_kernel and unchecked:
            report("kernel_footprint", toks[name_i].line,
                   "kernel code (tensor/, linalg/) must declare a checked "
                   "footprint — audit::unchecked is forbidden here; express "
                   "the write set with WriteSet spans (row_block, "
                   "add_row_tail, ...)")


def _flag_hot_constructions(toks: list[Token], lo: int, hi: int,
                            report) -> None:
    """Report ctor-with-args container constructions and `new` in
    toks[lo:hi]. The default-construct + resize scratch pattern and
    reference bindings (e.g. to tl_scratch arenas) are deliberately not
    flagged."""
    j = lo
    while j < hi:
        t = toks[j]
        if t.kind == "id" and t.text == "new":
            report("hot_path_alloc", t.line,
                   "operator new inside a hot parallel/kernel body — hoist "
                   "the allocation or use the tl_scratch arena")
            j += 1
            continue
        if t.kind == "id" and t.text in _HOT_CONTAINERS:
            k = j + 1
            if k < hi and toks[k].text == "<":
                close = match_angle(toks, k)
                if close != k:
                    k = close + 1
            if k < hi and toks[k].kind == "punct" \
                    and toks[k].text in {"&", "*", "&&"}:
                j += 1
                continue  # reference/pointer declaration, not a construction
            if k < hi and toks[k].kind == "id":
                opener = k + 1
                if opener < hi and toks[opener].kind == "punct" \
                        and toks[opener].text in {"(", "{"}:
                    closer = match_paren(toks, opener) \
                        if toks[opener].text == "(" \
                        else match_brace(toks, opener)
                    if closer > opener + 1:
                        report(
                            "hot_path_alloc", toks[j].line,
                            f"'{toks[j].text} {toks[k].text}(...)' "
                            "constructs a sized container inside a hot "
                            "parallel/kernel body — hoist it, use "
                            "tl_scratch, or default-construct once and "
                            "resize")
                        j = closer + 1
                        continue
        j += 1


def check_hot_path_alloc(ctx: engine.FileContext, tree: TreeContext,
                         report) -> None:
    del tree
    toks = ctx.lex.tokens
    if not ctx.in_par and not ctx.in_audit:
        for _, op, cl in _parallel_spans(ctx):
            _flag_hot_constructions(toks, op + 1, cl, report)
    # Packed-GEMM microkernel loops: every for-body in gemm_packed.* is a
    # hot loop (pack buffers come from tl_scratch; nothing allocates there).
    if pathlib.Path(ctx.rel).stem == "gemm_packed":
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text == "for" \
                    and i + 1 < len(toks) and toks[i + 1].text == "(":
                cl = match_paren(toks, i + 1)
                if cl + 1 < len(toks) and toks[cl + 1].text == "{":
                    _flag_hot_constructions(
                        toks, cl + 2, match_brace(toks, cl + 1), report)


# --------------------------------------------------------------------------
# determinism rules

def _range_for_loops(ctx: engine.FileContext):
    """Yield (for_line, range_expr_tokens, body_lo, body_hi) for each
    range-for, plus iterator loops spelled `x.begin()` in the for header
    (range_expr covers the whole header then)."""
    toks = ctx.lex.tokens
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "for":
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        cl = match_paren(toks, i + 1)
        colon = None
        depth = 0
        for j in range(i + 2, cl):
            tx = toks[j]
            if tx.kind == "punct":
                if tx.text in "([{<":
                    depth += 1
                elif tx.text in ")]}>":
                    depth -= 1
                elif tx.text == ":" and depth == 0:
                    colon = j
                    break
        if colon is not None:
            expr = toks[colon + 1:cl]
        else:
            # iterator loop: only interesting if it calls .begin()
            header = toks[i + 2:cl]
            if not any(tok.kind == "id" and tok.text == "begin"
                       for tok in header):
                continue
            expr = header
        body_lo = cl + 1
        if body_lo < len(toks) and toks[body_lo].text == "{":
            body_hi = match_brace(toks, body_lo)
        else:
            body_hi = body_lo
            while body_hi < len(toks) and toks[body_hi].text != ";":
                body_hi += 1
        yield t.line, expr, body_lo, body_hi


_SERIAL_SINK_IDS = {"record", "write", "save", "dump", "serialize", "Json",
                    "str", "append"}


def check_det_iteration(ctx: engine.FileContext, tree: TreeContext,
                        report) -> None:
    unordered = tree.unordered_members \
        | tree.unordered_locals.get(ctx.rel, set())
    ptrkey = tree.ptrkey_members | tree.ptrkey_locals.get(ctx.rel, set())
    if not unordered and not ptrkey:
        return
    toks = ctx.lex.tokens
    for line, expr, body_lo, body_hi in _range_for_loops(ctx):
        names = {t.text for t in expr if t.kind == "id"}
        if names & unordered:
            which = sorted(names & unordered)[0]
            report("det_unordered_iter", line,
                   f"iteration over unordered container '{which}' visits "
                   "elements in hash order (varies across runs/platforms) — "
                   "traverse in net.param_blocks() order, sort the keys, or "
                   "annotate 'hylo-lint: allow(det_unordered_iter: "
                   "commutative — why order cannot matter)'")
        if names & ptrkey:
            body = toks[body_lo:body_hi + 1]
            sink = any(
                (t.kind == "id" and t.text in _SERIAL_SINK_IDS)
                or (t.kind == "punct" and t.text == "<<")
                for t in body)
            if sink:
                which = sorted(names & ptrkey)[0]
                report("det_pointer_key", line,
                       f"pointer-keyed container '{which}' iterated into a "
                       "serialization/log sink — pointer values change "
                       "across runs under ASLR; key the output on a stable "
                       "id (param-block index) instead")


# --------------------------------------------------------------------------
# commit-after-charge (optim/ only, marker driven)

_MARKER_RE = re.compile(r"hylo-(scratch|commit)-(begin|end)\(([a-z0-9_]*)\)")

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}
_MUT_METHODS = {"resize", "clear", "assign", "push_back", "emplace_back",
                "pop_back", "pop_front", "push_front", "insert", "erase",
                "emplace", "reserve", "swap"}
_STMT_BOUND = {";", "{", "}"}


def _marker_regions(ctx: engine.FileContext, report):
    """Parse scratch/commit markers; returns (scratch, commit) line-range
    lists. Reports pairing problems under marker_hygiene."""
    events = []
    for c in ctx.lex.comments:
        for m in _MARKER_RE.finditer(c.text):
            events.append((c.line, m.group(1), m.group(2)))
    regions = {"scratch": [], "commit": []}
    stack: dict[str, list[int]] = {"scratch": [], "commit": []}
    for line, kind, which in sorted(events):
        if which == "begin":
            stack[kind].append(line)
        else:
            if not stack[kind]:
                report("marker_hygiene", line,
                       f"hylo-{kind}-end without a matching begin")
                continue
            regions[kind].append((stack[kind].pop(), line))
    for kind, opens in stack.items():
        for line in opens:
            report("marker_hygiene", line,
                   f"hylo-{kind}-begin is never closed")
    for b, e in regions["commit"]:
        if not any(sb <= b and e <= se for sb, se in regions["scratch"]):
            report("marker_hygiene", b,
                   "hylo-commit region is not nested inside a "
                   "hylo-scratch region")
    return regions["scratch"], regions["commit"]


def _alias_bindings(toks: list[Token], lo: int,
                    hi: int) -> list[tuple[int, str, bool]]:
    """Reference bindings `T& name = expr;` within toks[lo:hi], in token
    order, as (bind_idx, name, aliases_committed_state). A later binding of
    the same name shadows an earlier one — `LayerState& st = cand[l]` in a
    candidate loop and `LayerState& st = layers_[l]` in the commit loop are
    different objects."""
    bindings: list[tuple[int, str, bool]] = []
    live: dict[str, bool] = {}
    j = lo
    while j < hi - 3:
        if toks[j].kind == "punct" and toks[j].text == "&" \
                and toks[j - 1].kind == "id" \
                and toks[j + 1].kind == "id" \
                and toks[j + 2].text == "=":
            is_const = any(toks[k].kind == "id" and toks[k].text == "const"
                           for k in range(max(lo, j - 4), j))
            k = j + 3
            rhs_member = False
            while k < hi and toks[k].text != ";":
                if toks[k].kind == "id" and (toks[k].text.endswith("_")
                                             or live.get(toks[k].text)):
                    rhs_member = True
                k += 1
            committed = rhs_member and not is_const
            name = toks[j + 1].text
            bindings.append((j, name, committed))
            live[name] = committed
            j = k
            continue
        j += 1
    return bindings


def _is_alias_at(bindings: list[tuple[int, str, bool]], name: str,
                 at_idx: int) -> bool:
    committed = False
    for bind_idx, bname, bcommitted in bindings:
        if bind_idx >= at_idx:
            break
        if bname == name:
            committed = bcommitted
    return committed


def _stmt_leftmost_id(toks: list[Token], op_idx: int, lo: int):
    j = op_idx - 1
    while j >= lo and not (toks[j].kind == "punct"
                           and toks[j].text in _STMT_BOUND):
        j -= 1
    j += 1
    while j < op_idx:
        if toks[j].kind == "id":
            return toks[j].text
        j += 1
    return None


def _chain_root(toks: list[Token], method_idx: int, lo: int):
    """For `a.b.c.resize(...)` with method_idx at `resize`, walk back to
    `a` through '.', '->' and [...] subscripts."""
    j = method_idx
    while True:
        if j - 1 < lo or toks[j - 1].kind != "punct" \
                or toks[j - 1].text not in {".", "->"}:
            return toks[j].text if toks[j].kind == "id" else None
        j -= 2
        # skip a subscript: ...] -> matching [
        while j >= lo and toks[j].kind == "punct" and toks[j].text == "]":
            depth = 0
            while j >= lo:
                if toks[j].text == "]":
                    depth += 1
                elif toks[j].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
        if j < lo or toks[j].kind != "id":
            return None


def check_commit_after_charge(ctx: engine.FileContext, tree: TreeContext,
                              report) -> None:
    del tree
    if not ctx.in_optim or ctx.is_header:
        return
    toks = ctx.lex.tokens
    scratch, commit = _marker_regions(ctx, report)

    # Every update_curvature definition must carry the marked pattern.
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "update_curvature" and i >= 1 \
                and toks[i - 1].kind == "punct" and toks[i - 1].text == "::" \
                and i + 1 < len(toks) and toks[i + 1].text == "(":
            cl = match_paren(toks, i + 1)
            j = cl + 1
            while j < len(toks) and toks[j].text not in {"{", ";"}:
                j += 1
            if j >= len(toks) or toks[j].text != "{":
                continue  # declaration
            body_end = match_brace(toks, j)
            b_line, e_line = toks[j].line, toks[body_end].line
            if not any(b_line <= sb and se <= e_line for sb, se in scratch):
                report("commit_after_charge", t.line,
                       "update_curvature has no hylo-scratch-begin/end "
                       "region — mark where candidates are computed so the "
                       "commit-after-charge contract is checkable")
            elif not any(b_line <= cb and ce <= e_line for cb, ce in commit):
                report("commit_after_charge", t.line,
                       "update_curvature has a scratch region but no "
                       "hylo-commit-begin/end region — mark where the "
                       "candidates land in committed state")

    if not scratch:
        return

    def in_commit(line: int) -> bool:
        return any(b <= line <= e for b, e in commit)

    # Token index ranges covered by scratch regions.
    for sb, se in scratch:
        lo = next((k for k, tk in enumerate(toks) if tk.line >= sb),
                  len(toks))
        hi = next((k for k in range(len(toks) - 1, -1, -1)
                   if toks[k].line <= se), -1) + 1
        if lo >= hi:
            continue
        bindings = _alias_bindings(toks, lo, hi)

        def is_committed(name: str, at_idx: int) -> bool:
            return name.endswith("_") \
                or _is_alias_at(bindings, name, at_idx)

        def flag(idx: int, what: str) -> None:
            report("commit_after_charge", toks[idx].line,
                   f"{what} mutates committed optimizer state inside the "
                   "scratch region but outside any hylo-commit region — "
                   "compute into locals and commit after the comm charge "
                   "lands (PR-4 fault-degradation contract)")

        for k in range(lo, hi):
            tk = toks[k]
            if tk.kind != "punct" or in_commit(tk.line):
                continue
            if tk.text in _ASSIGN_OPS:
                # skip '=' in reference bindings: `T& st = ...`
                if tk.text == "=" and k >= 2 and toks[k - 2].text == "&" \
                        and toks[k - 1].kind == "id":
                    continue
                target = _stmt_leftmost_id(toks, k, lo)
                if target and is_committed(target, k):
                    flag(k, f"assignment to '{target}'")
            elif tk.text in {"++", "--"}:
                neighbor = None
                if k + 1 < hi and toks[k + 1].kind == "id":
                    neighbor = toks[k + 1].text
                elif k >= 1 and toks[k - 1].kind == "id":
                    neighbor = toks[k - 1].text
                if neighbor and is_committed(neighbor, k):
                    flag(k, f"increment of '{neighbor}'")
        for k in range(lo, hi):
            tk = toks[k]
            if tk.kind == "id" and tk.text in _MUT_METHODS \
                    and not in_commit(tk.line) \
                    and k + 1 < hi and toks[k + 1].text == "(" \
                    and k >= 1 and toks[k - 1].text in {".", "->"}:
                root = _chain_root(toks, k, lo)
                if root and is_committed(root, k):
                    flag(k, f"'{root}.{tk.text}(...)'")


# --------------------------------------------------------------------------
# exception safety

def check_catch_all(ctx: engine.FileContext, tree: TreeContext,
                    report) -> None:
    del tree
    toks = ctx.lex.tokens
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "catch":
            continue
        if i + 3 >= len(toks) or toks[i + 1].text != "(" \
                or toks[i + 2].text != "..." or toks[i + 3].text != ")":
            continue
        j = i + 4
        if j >= len(toks) or toks[j].text != "{":
            continue
        body_end = match_brace(toks, j)
        ok = any(tk.kind == "id"
                 and tk.text in {"throw", "current_exception",
                                 "rethrow_exception"}
                 for tk in toks[j:body_end + 1])
        if not ok:
            report("catch_all", t.line,
                   "catch (...) swallows the exception — rethrow, convert "
                   "to a typed error, or annotate "
                   "'hylo-lint: allow(catch_all: why swallowing is safe)'")


# --------------------------------------------------------------------------
# float hygiene

def _is_nonzero_float_literal(text: str) -> bool:
    t = text.rstrip("fFlL")
    if t.lower().startswith("0x"):
        return False
    if "." not in t and "e" not in t.lower():
        return False
    try:
        return float(t) != 0.0
    except ValueError:
        return False


def check_float_compare(ctx: engine.FileContext, tree: TreeContext,
                        report) -> None:
    del tree
    toks = ctx.lex.tokens
    for i, t in enumerate(toks):
        if t.kind != "punct" or t.text not in {"==", "!="}:
            continue
        for nb in (toks[i - 1] if i >= 1 else None,
                   toks[i + 1] if i + 1 < len(toks) else None):
            if nb is not None and nb.kind == "num" \
                    and _is_nonzero_float_literal(nb.text):
                report("float_compare", t.line,
                       f"'{t.text} {nb.text}': exact equality against a "
                       "nonzero float literal — compare against a "
                       "tolerance, or annotate "
                       "'hylo-lint: allow(float_compare: why exact "
                       "equality is correct here)'")
                break


# --------------------------------------------------------------------------
# suppression hygiene

def check_allow_reason(ctx: engine.FileContext, tree: TreeContext,
                       report) -> None:
    del tree
    for a in ctx.allows:
        if a.form in {"", "-begin"} and not a.has_reason:
            report("allow_reason", a.line,
                   "suppression without a reason — spell it "
                   "'hylo-lint: allow(rule: reason)' so the waiver is "
                   "auditable")


ALL_CHECKS = [
    check_line_rules,
    check_pragma_once,
    check_metric_names,
    check_parallel_sites,
    check_hot_path_alloc,
    check_det_iteration,
    check_commit_after_charge,
    check_catch_all,
    check_float_compare,
    check_allow_reason,
]
