#!/usr/bin/env python3
"""End-to-end self-test for hylo_analyze.

Builds a tiny synthetic tree in a temp dir and checks the behaviors the
fixture corpus cannot express as plain pass/fail runs:

  * suppression semantics — line allow, block allow, and the allow_reason
    meta-rule on a reasonless legacy allow;
  * SARIF 2.1.0 output shape — schema URI, rule metadata, results with
    partialFingerprints and physicalLocation regions;
  * baseline semantics — write-baseline silences existing findings, the
    fingerprints survive line-number shifts, and a genuinely new finding
    still fails the run.

Exits 0 when every assertion holds; prints the first failure otherwise.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent


def run(root: pathlib.Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(TOOLS_DIR / "hylo_analyze"),
         "--root", str(root), *extra],
        capture_output=True, text=True, check=False)


FILE_BODY = """\
namespace t {
int risky();
int swallowed() {
  try {
    return risky();
  } catch (...) {
    return -1;
  }
}
bool cmp(double x) { return x == 2.5; }  // hylo-lint: allow(float_compare: selftest: exact sentinel)
// hylo-lint: allow-begin(catch_all: selftest block waiver)
int swallowed_again() {
  try {
    return risky();
  } catch (...) {
    return -2;
  }
}
// hylo-lint: allow-end(catch_all)
bool legacy(double x) { return x != 1.25; }  // hylo-lint: allow(float_compare)
}  // namespace t
"""


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="hylo_analyze_selftest_") as td:
        root = pathlib.Path(td) / "src"
        root.mkdir()
        src = root / "t.cpp"
        src.write_text(FILE_BODY, encoding="utf-8")
        sarif_path = pathlib.Path(td) / "out.sarif"
        baseline = pathlib.Path(td) / "baseline.json"

        # --- suppressions: the unsuppressed catch_all plus the allow_reason
        # finding on the reasonless legacy allow must be the only findings.
        proc = run(root, "--sarif", str(sarif_path))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        lines = [ln for ln in proc.stdout.splitlines() if "] " in ln]
        assert len(lines) == 2, proc.stdout
        assert any("[catch_all]" in ln and "t.cpp:6" in ln for ln in lines), \
            proc.stdout
        assert any("[allow_reason]" in ln and "t.cpp:20" in ln
                   for ln in lines), proc.stdout
        # line allow silenced float_compare, block allow the second catch_all
        assert not any("t.cpp:10" in ln or "t.cpp:15" in ln for ln in lines), \
            proc.stdout

        # --- SARIF shape
        doc = json.loads(sarif_path.read_text(encoding="utf-8"))
        assert doc["version"] == "2.1.0", doc["version"]
        assert "sarif" in doc["$schema"], doc["$schema"]
        runs = doc["runs"]
        assert len(runs) == 1
        driver = runs[0]["tool"]["driver"]
        assert driver["name"] == "hylo_analyze"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"catch_all", "allow_reason", "float_compare"} <= rule_ids
        results = runs[0]["results"]
        assert len(results) == 2, json.dumps(results, indent=2)
        for res in results:
            assert res["ruleId"] in rule_ids
            loc = res["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"].endswith("t.cpp")
            assert loc["region"]["startLine"] >= 1
            assert "hyloAnalyze/v1" in res["partialFingerprints"], res

        # --- baseline: write, then the same tree must come back clean.
        proc = run(root, "--baseline", str(baseline), "--write-baseline")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        entries = json.loads(baseline.read_text(encoding="utf-8"))["entries"]
        assert len(entries) == 2, entries
        proc = run(root, "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "2 baselined" in proc.stdout, proc.stdout

        # --- fingerprints are line-number independent: shifting the file
        # down two lines must not resurrect the baselined findings.
        src.write_text("\n\n" + FILE_BODY, encoding="utf-8")
        proc = run(root, "--baseline", str(baseline))
        assert proc.returncode == 0, proc.stdout + proc.stderr

        # --- a genuinely new finding still fails against the old baseline.
        src.write_text(FILE_BODY + "\nnamespace t { bool nu(double v)"
                       " { return v == 7.5; } }\n", encoding="utf-8")
        proc = run(root, "--baseline", str(baseline))
        assert proc.returncode == 1, proc.stdout + proc.stderr
        fresh = [ln for ln in proc.stdout.splitlines()
                 if "] " in ln and "baselined" not in ln]
        assert len(fresh) == 1 and "[float_compare]" in fresh[0], proc.stdout

    print("hylo_analyze selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
