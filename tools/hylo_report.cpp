// hylo_report — run-log analyzer for the JSONL telemetry hylo_train writes
// (DESIGN.md §12). Single-run mode renders a markdown report (per-epoch
// table, switch-decision timeline, health/fault/staleness/alert rollups,
// per-section time breakdown) and optionally a per-epoch CSV; two-run mode
// additionally diffs the run against a baseline log with tolerances and
// exits non-zero on regressions, so BENCH runs can be compared in CI before
// and after a performance change.
//
//   hylo_report RUN.jsonl [BASELINE.jsonl]
//       [--md FILE] [--csv FILE]
//       [--tol-loss X] [--tol-metric X] [--tol-time X]
//
// Exit codes: 0 clean, 1 regressions found (two-run mode), 2 usage or
// malformed input.
#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "hylo/obs/json.hpp"

namespace {

using hylo::obs::Json;

double num(const Json& obj, const std::string& key, double def) {
  const Json* v = obj.find(key);
  if (v == nullptr) return def;
  return v->to_double();
}

std::string str(const Json& obj, const std::string& key,
                const std::string& def = "") {
  const Json* v = obj.find(key);
  return v != nullptr && v->is_string() ? v->str() : def;
}

std::string fmt(double v, int prec = 4) {
  if (std::isnan(v)) return "-";
  std::ostringstream oss;
  oss.precision(prec);
  oss << v;
  return oss.str();
}

/// CSV field quoting (RFC 4180: wrap and double embedded quotes).
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += '"';
  return out;
}

struct EpochRow {
  double epoch = 0, train_loss = 0, train_metric = 0, test_loss = 0,
         test_metric = 0, wall = 0;
  std::string mode;
  std::optional<Json> switching;
  double stale_refreshes = std::numeric_limits<double>::quiet_NaN();
  std::optional<Json> faults;
};

struct LayerRollup {
  double max_cond = std::numeric_limits<double>::quiet_NaN();
  double min_energy = std::numeric_limits<double>::quiet_NaN();
  double max_staleness = 0;
  double nonfinite = 0;
};

struct RunData {
  std::string path;
  std::optional<Json> run_start;
  std::optional<Json> result;
  std::optional<Json> health_summary;
  std::optional<Json> metrics;
  std::vector<EpochRow> epochs;
  std::vector<Json> alerts;
  std::vector<Json> rollbacks;  ///< "rollback" records, in firing order
  std::optional<Json> recovery_summary;
  std::optional<Json> recovery_exhausted;
  std::map<long, LayerRollup> layers;  ///< per-layer health rollup
  long health_records = 0;
  long records = 0;
};

RunData load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw hylo::Error("cannot open run log: " + path);
  RunData run;
  run.path = path;
  std::string line;
  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Json rec;
    try {
      rec = Json::parse(line);
    } catch (const hylo::Error& e) {
      throw hylo::Error(path + ":" + std::to_string(line_no) + ": " +
                        e.what());
    }
    ++run.records;
    const std::string type = str(rec, "type");
    if (type == "run_start") {
      run.run_start = rec;
    } else if (type == "result") {
      run.result = rec;
    } else if (type == "health_summary") {
      run.health_summary = rec;
    } else if (type == "metrics") {
      run.metrics = rec;
    } else if (type == "alert") {
      run.alerts.push_back(rec);
    } else if (type == "rollback") {
      run.rollbacks.push_back(rec);
    } else if (type == "recovery_summary") {
      run.recovery_summary = rec;
    } else if (type == "recovery_exhausted") {
      run.recovery_exhausted = rec;
    } else if (type == "epoch") {
      EpochRow row;
      row.epoch = num(rec, "epoch", -1);
      row.train_loss = num(rec, "train_loss", 0);
      row.train_metric = num(rec, "train_metric", 0);
      row.test_loss = num(rec, "test_loss", 0);
      row.test_metric = num(rec, "test_metric", 0);
      row.mode = str(rec, "mode");
      if (const Json* t = rec.find("time"); t != nullptr)
        row.wall = num(*t, "wall", 0);
      if (const Json* sw = rec.find("switching"); sw != nullptr)
        row.switching = *sw;
      if (const Json* f = rec.find("faults"); f != nullptr) row.faults = *f;
      if (const Json* s = rec.find("stale_refreshes"); s != nullptr)
        row.stale_refreshes = s->to_double();
      run.epochs.push_back(std::move(row));
    } else if (type == "health") {
      ++run.health_records;
      if (const Json* layers = rec.find("layers"); layers != nullptr) {
        for (const Json& l : layers->items()) {
          const long idx = static_cast<long>(num(l, "layer", -1));
          LayerRollup& roll = run.layers[idx];
          const double cond =
              std::fmax(std::fmax(num(l, "cond", NAN), num(l, "cond_a", NAN)),
                        num(l, "cond_g", NAN));
          if (!std::isnan(cond))
            roll.max_cond = std::isnan(roll.max_cond)
                                ? cond
                                : std::fmax(roll.max_cond, cond);
          const double energy = num(l, "energy_fraction", NAN);
          if (!std::isnan(energy))
            roll.min_energy = std::isnan(roll.min_energy)
                                  ? energy
                                  : std::fmin(roll.min_energy, energy);
          roll.max_staleness =
              std::fmax(roll.max_staleness, num(l, "staleness", 0));
          roll.nonfinite += num(l, "nonfinite", 0);
        }
      }
    }
  }
  return run;
}

// ----------------------------------------------------------- markdown ----

void section_header(std::ostream& os, const RunData& run) {
  os << "# hylo run report\n\n`" << run.path << "` — " << run.records
     << " records";
  if (run.run_start) {
    const Json& rs = *run.run_start;
    os << "\n\n| optimizer | world | epochs | batch | lr | interconnect |"
       << " params |\n|---|---|---|---|---|---|---|\n| " << str(rs, "optimizer")
       << " | " << fmt(num(rs, "world", 0), 6) << " | "
       << fmt(num(rs, "epochs", 0), 6) << " | "
       << fmt(num(rs, "batch_size", 0), 6) << " | " << fmt(num(rs, "lr", 0))
       << " | " << str(rs, "interconnect") << " | "
       << fmt(num(rs, "params", 0), 12) << " |";
  }
  os << "\n\n";
}

void section_summary(std::ostream& os, const RunData& run) {
  if (!run.result) return;
  const Json& r = *run.result;
  os << "## Run summary\n\n"
     << "- epochs run: " << fmt(num(r, "epochs_run", 0), 6) << ", iterations: "
     << fmt(num(r, "iterations", 0), 9) << "\n"
     << "- best metric: " << fmt(num(r, "best_metric", NAN)) << "\n"
     << "- simulated time: " << fmt(num(r, "total_seconds", NAN)) << "s ("
     << fmt(num(r, "compute_seconds", NAN)) << " parallel-compute + "
     << fmt(num(r, "replicated_seconds", NAN)) << " replicated + "
     << fmt(num(r, "comm_seconds", NAN)) << " comm)\n"
     << "- wire: " << fmt(num(r, "total_wire_bytes", 0), 12) << " bytes over "
     << fmt(num(r, "total_messages", 0), 9) << " collectives\n";
  if (r.find("time_to_target") != nullptr)
    os << "- reached target in " << fmt(num(r, "time_to_target", NAN))
       << "s / " << fmt(num(r, "epochs_to_target", 0), 6) << " epochs\n";
  if (r.find("faults_injected") != nullptr)
    os << "- faults: " << fmt(num(r, "faults_injected", 0), 9)
       << " injected, " << fmt(num(r, "stale_refreshes", 0), 9)
       << " stale refreshes, final world "
       << fmt(num(r, "final_world", 0), 6) << "\n";
  os << "\n";
}

void section_epochs(std::ostream& os, const RunData& run) {
  if (run.epochs.empty()) return;
  os << "## Per-epoch\n\n"
     << "| epoch | train loss | train metric | test loss | test metric |"
     << " wall s | mode |\n|---|---|---|---|---|---|---|\n";
  for (const auto& e : run.epochs)
    os << "| " << fmt(e.epoch, 6) << " | " << fmt(e.train_loss) << " | "
       << fmt(e.train_metric) << " | " << fmt(e.test_loss) << " | "
       << fmt(e.test_metric) << " | " << fmt(e.wall) << " | " << e.mode
       << " |\n";
  os << "\n";
}

void section_switching(std::ostream& os, const RunData& run) {
  bool any = false;
  for (const auto& e : run.epochs) any = any || e.switching.has_value();
  if (!any) return;
  os << "## Switch-decision timeline\n\n"
     << "| epoch | mode | R | threshold | exceeded | lr decay | critical |"
     << " reason |\n|---|---|---|---|---|---|---|---|\n";
  for (const auto& e : run.epochs) {
    if (!e.switching) continue;
    const Json& sw = *e.switching;
    const Json* exceeded = sw.find("exceeded");
    const Json* lrd = sw.find("lr_decayed");
    const Json* crit = sw.find("critical");
    os << "| " << fmt(e.epoch, 6) << " | " << e.mode << " | "
       << fmt(num(sw, "R", NAN)) << " | " << fmt(num(sw, "threshold", NAN))
       << " | " << (exceeded != nullptr && exceeded->boolean() ? "yes" : "no")
       << " | " << (lrd != nullptr && lrd->boolean() ? "yes" : "no") << " | "
       << (crit != nullptr && crit->boolean() ? "yes" : "no") << " | "
       << str(sw, "reason") << " |\n";
  }
  os << "\n";
}

void section_health(std::ostream& os, const RunData& run) {
  if (run.health_records == 0 && !run.health_summary) return;
  os << "## Health rollup\n\n" << run.health_records
     << " probe record(s)";
  if (run.health_summary) {
    const Json& hs = *run.health_summary;
    os << "; worst condition estimate " << fmt(num(hs, "worst_cond", NAN))
       << ", " << fmt(num(hs, "total_nonfinite", 0), 9)
       << " non-finite value(s)";
  }
  os << "\n\n";
  if (!run.layers.empty()) {
    os << "| layer | max cond | min energy | max staleness | nonfinite |\n"
       << "|---|---|---|---|---|\n";
    for (const auto& [idx, roll] : run.layers)
      os << "| " << idx << " | " << fmt(roll.max_cond) << " | "
         << fmt(roll.min_energy) << " | " << fmt(roll.max_staleness, 6)
         << " | " << fmt(roll.nonfinite, 9) << " |\n";
    os << "\n";
  }
}

void section_alerts(std::ostream& os, const RunData& run) {
  os << "## Alerts\n\n";
  if (run.alerts.empty()) {
    os << "none fired\n\n";
    return;
  }
  std::map<std::string, long> by_rule;
  os << "| rule | severity | epoch | value | threshold | detail |\n"
     << "|---|---|---|---|---|---|\n";
  for (const Json& a : run.alerts) {
    by_rule[str(a, "rule")] += 1;
    os << "| " << str(a, "rule") << " | " << str(a, "severity") << " | "
       << fmt(num(a, "epoch", -1), 6) << " | " << fmt(num(a, "value", NAN))
       << " | " << fmt(num(a, "threshold", NAN)) << " | " << str(a, "detail")
       << " |\n";
  }
  os << "\nBy rule:";
  for (const auto& [rule, n] : by_rule) os << " " << rule << " x" << n << ";";
  os << "\n\n";
}

void section_recovery(std::ostream& os, const RunData& run) {
  // Rendered only when the run had the recovery engine armed: the trainer
  // writes a "recovery" policy block into run_start and a recovery_summary
  // at the end, and one "rollback" record per trigger in between.
  const Json* policy =
      run.run_start ? run.run_start->find("recovery") : nullptr;
  if (policy == nullptr && run.rollbacks.empty() && !run.recovery_summary &&
      !run.recovery_exhausted)
    return;
  os << "## Recovery\n\n";
  if (policy != nullptr)
    os << "policy: budget " << fmt(num(*policy, "max_rollbacks", 0), 6)
       << " rollback(s), first-order window "
       << fmt(num(*policy, "first_order_iters", 0), 6)
       << " iter(s), lr backoff x" << fmt(num(*policy, "lr_backoff", 1))
       << "\n\n";
  if (run.rollbacks.empty()) {
    os << "no rollbacks triggered\n";
  } else {
    os << "| # | trigger | epoch | iter | rung | first-order | lr cut |"
       << " budget left | target snapshot |\n"
       << "|---|---|---|---|---|---|---|---|---|\n";
    for (const Json& rb : run.rollbacks) {
      const Json* fo = rb.find("first_order");
      const Json* lr = rb.find("reduce_lr");
      os << "| " << fmt(num(rb, "rollbacks", 0), 6) << " | "
         << str(rb, "trigger") << " | " << fmt(num(rb, "epoch", -1), 6)
         << " | " << fmt(num(rb, "iter", -1), 6) << " | "
         << fmt(num(rb, "rung", 0), 6) << " | "
         << (fo != nullptr && fo->boolean() ? "yes" : "no") << " | "
         << (lr != nullptr && lr->boolean() ? "yes" : "no") << " | "
         << fmt(num(rb, "budget_left", 0), 6) << " | `"
         << str(rb, "target") << "` |\n";
    }
  }
  os << "\n";
  if (run.recovery_summary) {
    const Json& rs = *run.recovery_summary;
    os << "summary: " << fmt(num(rs, "rollbacks", 0), 6) << "/"
       << fmt(num(rs, "budget", 0), 6) << " budget consumed, "
       << fmt(num(rs, "rerun_iters", 0), 9) << " re-run iteration(s), "
       << fmt(num(rs, "guard_rejects", 0), 9) << " guard-rejected refresh(es)";
    if (const std::string lg = str(rs, "last_good"); !lg.empty())
      os << ", last verified-good snapshot `" << lg << "`";
    os << "\n\n";
  }
  // Per-method gate rollup from the counter dump: "optim/<m>/guard_rejects"
  // plus the detected/escaped split the gates were defending against.
  if (run.metrics) {
    if (const Json* counters = run.metrics->find("counters");
        counters != nullptr) {
      std::ostringstream by_method;
      for (const auto& [name, value] : counters->members()) {
        const std::string suffix = "/guard_rejects";
        if (name.rfind("optim/", 0) == 0 && name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0 &&
            value.to_double() > 0)
          by_method << " " << name.substr(6, name.size() - 6 - suffix.size())
                    << " x" << fmt(value.to_double(), 9) << ";";
      }
      if (!by_method.str().empty())
        os << "guard rejects by method:" << by_method.str() << "\n\n";
      const double detected = num(*counters, "comm/faults/sdc_detected", 0);
      const double escaped = num(*counters, "comm/faults/sdc_escaped", 0);
      if (detected > 0 || escaped > 0)
        os << "silent corruption: " << fmt(detected, 9)
           << " caught by the payload check, " << fmt(escaped, 9)
           << " escaped into payloads\n\n";
    }
  }
  if (run.recovery_exhausted) {
    const Json& re = *run.recovery_exhausted;
    os << "**recovery budget exhausted**: " << str(re, "trigger")
       << " fired at epoch " << fmt(num(re, "epoch", -1), 6) << " iter "
       << fmt(num(re, "iter", -1), 6) << " with "
       << fmt(num(re, "rollbacks", 0), 6) << "/"
       << fmt(num(re, "budget", 0), 6)
       << " rollback(s) already spent — the run could not self-heal\n\n";
  }
}

void section_time(std::ostream& os, const RunData& run) {
  if (!run.metrics) return;
  const Json* timings = run.metrics->find("timings");
  if (timings == nullptr || timings->size() == 0) return;
  os << "## Time breakdown\n\n| section | seconds | calls |\n|---|---|---|\n";
  for (const auto& [name, entry] : timings->members())
    os << "| " << name << " | " << fmt(num(entry, "seconds", NAN)) << " | "
       << fmt(num(entry, "calls", 0), 9) << " |\n";
  os << "\n";
}

void write_markdown(std::ostream& os, const RunData& run) {
  section_header(os, run);
  section_summary(os, run);
  section_epochs(os, run);
  section_switching(os, run);
  section_health(os, run);
  section_alerts(os, run);
  section_recovery(os, run);
  section_time(os, run);
}

void write_csv(std::ostream& os, const RunData& run) {
  os << "epoch,train_loss,train_metric,test_loss,test_metric,wall_seconds,"
        "mode\n";
  for (const auto& e : run.epochs)
    os << fmt(e.epoch, 6) << ',' << fmt(e.train_loss, 17) << ','
       << fmt(e.train_metric, 17) << ',' << fmt(e.test_loss, 17) << ','
       << fmt(e.test_metric, 17) << ',' << fmt(e.wall, 17) << ','
       << csv_escape(e.mode) << "\n";
}

// ---------------------------------------------------------- regression ----

struct Tolerances {
  double loss = 1e-6;    ///< absolute: train/test loss may rise this much
  double metric = 1e-6;  ///< absolute: test metric may drop this much
  double time = 0.10;    ///< relative: simulated seconds may grow this much
};

int diff_runs(std::ostream& os, const RunData& run, const RunData& base,
              const Tolerances& tol) {
  os << "## Regression diff vs `" << base.path << "`\n\n";
  long regressions = 0;
  const std::size_t n = std::min(run.epochs.size(), base.epochs.size());
  if (run.epochs.size() != base.epochs.size()) {
    os << "- epoch count differs: " << run.epochs.size() << " vs "
       << base.epochs.size() << " (comparing the first " << n << ")\n";
    ++regressions;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const EpochRow& a = run.epochs[i];
    const EpochRow& b = base.epochs[i];
    if (a.train_loss > b.train_loss + tol.loss ||
        a.test_loss > b.test_loss + tol.loss) {
      os << "- epoch " << fmt(a.epoch, 6) << ": loss regressed (train "
         << fmt(b.train_loss) << " -> " << fmt(a.train_loss) << ", test "
         << fmt(b.test_loss) << " -> " << fmt(a.test_loss) << ")\n";
      ++regressions;
    }
    if (a.test_metric < b.test_metric - tol.metric) {
      os << "- epoch " << fmt(a.epoch, 6) << ": test metric regressed ("
         << fmt(b.test_metric) << " -> " << fmt(a.test_metric) << ")\n";
      ++regressions;
    }
  }
  if (run.result && base.result) {
    const double t = num(*run.result, "total_seconds", NAN);
    const double tb = num(*base.result, "total_seconds", NAN);
    if (!std::isnan(t) && !std::isnan(tb) && tb > 0.0 &&
        t > tb * (1.0 + tol.time)) {
      os << "- simulated time regressed: " << fmt(tb) << "s -> " << fmt(t)
         << "s (tolerance " << fmt(tol.time * 100.0, 3) << "%)\n";
      ++regressions;
    }
  }
  const long crit_run = run.alerts.empty() ? 0 : [&] {
    long c = 0;
    for (const Json& a : run.alerts)
      if (str(a, "severity") == "critical") ++c;
    return c;
  }();
  long crit_base = 0;
  for (const Json& a : base.alerts)
    if (str(a, "severity") == "critical") ++crit_base;
  if (crit_run > crit_base) {
    os << "- critical alerts regressed: " << crit_base << " -> " << crit_run
       << "\n";
    ++regressions;
  }
  // Recovery is a last-resort mechanism: a run that needs more rollbacks
  // than its baseline (or newly spends its whole budget) got less healthy
  // even if every epoch it eventually produced looks fine.
  const long rb_run = static_cast<long>(run.rollbacks.size());
  const long rb_base = static_cast<long>(base.rollbacks.size());
  if (rb_run > rb_base) {
    os << "- recovery rollbacks regressed: " << rb_base << " -> " << rb_run
       << "\n";
    ++regressions;
  }
  if (run.recovery_exhausted && !base.recovery_exhausted) {
    os << "- recovery budget newly exhausted ("
       << str(*run.recovery_exhausted, "trigger") << " at epoch "
       << fmt(num(*run.recovery_exhausted, "epoch", -1), 6) << ")\n";
    ++regressions;
  }
  if (regressions == 0) {
    os << "no regressions (loss tol " << fmt(tol.loss, 3) << ", metric tol "
       << fmt(tol.metric, 3) << ", time tol " << fmt(tol.time * 100.0, 3)
       << "%)\n";
  } else {
    os << "\n**" << regressions << " regression(s)**\n";
  }
  os << "\n";
  return regressions == 0 ? 0 : 1;
}

void usage(std::ostream& os) {
  os << "usage: hylo_report RUN.jsonl [BASELINE.jsonl]\n"
        "       [--md FILE] [--csv FILE]\n"
        "       [--tol-loss X] [--tol-metric X] [--tol-time X]\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> logs;
  std::string md_path, csv_path;
  Tolerances tol;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(std::cerr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--md") md_path = value();
    else if (arg == "--csv") csv_path = value();
    else if (arg == "--tol-loss") tol.loss = std::stod(value());
    else if (arg == "--tol-metric") tol.metric = std::stod(value());
    else if (arg == "--tol-time") tol.time = std::stod(value());
    else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      logs.push_back(arg);
    }
  }
  if (logs.empty() || logs.size() > 2) {
    usage(std::cerr);
    return 2;
  }

  try {
    const RunData run = load(logs[0]);
    std::ostringstream report;
    write_markdown(report, run);
    int rc = 0;
    if (logs.size() == 2) {
      const RunData base = load(logs[1]);
      rc = diff_runs(report, run, base, tol);
    }
    if (!md_path.empty()) {
      std::ofstream out(md_path);
      if (!out) throw hylo::Error("cannot write " + md_path);
      out << report.str();
      std::cout << "report written to " << md_path << "\n";
    } else {
      std::cout << report.str();
    }
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) throw hylo::Error("cannot write " + csv_path);
      write_csv(out, run);
      std::cout << "csv written to " << csv_path << "\n";
    }
    return rc;
  } catch (const hylo::Error& e) {
    std::cerr << "hylo_report: " << e.what() << "\n";
    return 2;
  }
}
