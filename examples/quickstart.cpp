// Quickstart: train a small MLP on the spirals task with every optimizer in
// the library and compare time-to-accuracy. This is the five-minute tour of
// the public API: dataset -> model -> optimizer -> Trainer.
//
//   $ ./examples/quickstart
#include <iostream>

#include "hylo/hylo.hpp"

int main() {
  using namespace hylo;

  // 1. A deterministic synthetic dataset (three interleaved spirals).
  const DataSplit data = make_spirals(/*n_train=*/1536, /*n_test=*/512,
                                      /*classes=*/3, /*noise=*/0.04,
                                      /*seed=*/7);

  // 2. Train the same model from the same weights with each optimizer.
  CsvWriter table({"optimizer", "final_acc", "best_acc", "epochs",
                   "sim_seconds"});
  for (const std::string name :
       {"SGD", "ADAM", "KFAC", "EKFAC", "KBFGS-L", "SNGD", "HyLo"}) {
    Network net = make_mlp({2, 1, 1}, {64, 64}, 3, /*seed=*/42);

    OptimConfig oc;
    oc.lr = (name == "ADAM") ? 0.003 : 0.05;
    oc.momentum = 0.9;
    oc.damping = 0.3;
    oc.update_freq = 5;
    oc.rank_ratio = 0.1;
    auto opt = make_optimizer(name, oc);

    TrainConfig tc;
    tc.epochs = 15;
    tc.batch_size = 64;
    tc.world = 1;
    tc.lr_schedule = {{10}, 0.1};
    Trainer trainer(net, *opt, data, tc);
    const TrainResult res = trainer.run();

    table.add(name, res.epochs.back().test_metric, res.best_metric(),
              res.epochs.size(), res.total_seconds);
  }

  std::cout << "\nSpirals (3 classes), MLP 2-64-64-3, identical seeds:\n";
  table.print_table();
  std::cout << "\nsim_seconds is simulated wall time (measured compute + "
               "modeled communication; world=1 here, so pure compute).\n";
  return 0;
}
