// hylo_train — command-line trainer mirroring the paper artifact's
// train-*.sh interface. Mix and match model, dataset, optimizer, worker
// count and the analysis flags the artifact exposes:
//
//   ./examples/hylo_train --model resnet32 --optimizer HyLo --world 8
//       --epochs 10 --batch 16 --lr 0.1 --damping 0.3 --freq 10
//       --rank-ratio 0.1 --profiling --rank-analysis --grad-norm
//       --checkpoint model.ckpt
//   (one command line; wrapped here for readability)
//
// Flags (all optional; sensible defaults):
//   --model {mlp,c3f1,resnet32,resnet50,densenet,unet}
//   --optimizer {SGD,ADAM,KFAC,EKFAC,KBFGS-L,SNGD,HyLo}
//   --world N --epochs N --batch N --max-iters N --seed N
//   --lr X --damping X --freq N --rank-ratio X --kl-clip X
//   --wire-bytes X        (4=FP32, 2=FP16, 2.625=21-bit of Ueno et al.)
//   --interconnect {mist,p2,loopback}
//   --target X            (early-stop test metric)
//   --telemetry DIR       (write DIR/run.jsonl + DIR/trace.json; load the
//                          trace in chrome://tracing or ui.perfetto.dev)
//   --no-step-log         (with --telemetry: epoch records only)
//   --faults SPEC         (deterministic fault injection, SPEC =
//                          seed:rate[:mix] as for HYLO_FAULTS, e.g.
//                          --faults 7:0.05:timeout=1,rank_down=2; the flag
//                          overrides the environment spec)
//   --health              (enable training-health probes + alert engine;
//                          see DESIGN.md §12)
//   --health-cadence N    (probe every Nth refresh opportunity; implies
//                          --health; default 1)
//   --strict-health       (implies --health; exit 3 if any critical alert
//                          fired — CI gates on this)
//   --profiling           (dump the comp/comm profiler at the end)
//   --grad-norm           (print HyLo's Δ-norm history)
//   --rank-analysis       (print the low rank used per refresh)
//   --checkpoint PATH     (save final weights)
//   --checkpoint-dir DIR  (write crash-safe run snapshots under DIR; pairs
//                          with --checkpoint-every; overrides HYLO_CKPT_*)
//   --checkpoint-every N  (snapshot cadence in iterations; 0 disables)
//   --checkpoint-keep N   (retain the newest N snapshots; default 3)
//   --resume PATH         (restore a run snapshot and continue training
//                          bitwise-identically; appends to the interrupted
//                          run's telemetry when --telemetry points at it)
//   --recover SPEC        (checkpoint-rollback self-healing, SPEC =
//                          on|off|BUDGET[:FO_ITERS[:LR_BACKOFF]] as for
//                          HYLO_RECOVER, e.g. --recover 5:40:0.25; needs
//                          --checkpoint-dir/-every; the flag overrides the
//                          environment spec — see DESIGN.md §16)
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "hylo/hylo.hpp"

namespace {
using namespace hylo;

struct Args {
  std::map<std::string, std::string> kv;
  std::map<std::string, bool> flags;

  std::string get(const std::string& key, const std::string& def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  double getd(const std::string& key, double def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::stod(it->second);
  }
  index_t geti(const std::string& key, index_t def) const {
    return static_cast<index_t>(getd(key, static_cast<double>(def)));
  }
  bool has(const std::string& key) const { return flags.count(key) > 0; }
};

Args parse(int argc, char** argv) {
  Args a;
  const std::map<std::string, bool> known_flags = {
      {"profiling", true},  {"grad-norm", true},     {"rank-analysis", true},
      {"no-step-log", true}, {"health", true},       {"strict-health", true}};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    HYLO_CHECK(arg.rfind("--", 0) == 0, "unexpected argument " << arg);
    arg = arg.substr(2);
    if (known_flags.count(arg) > 0) {
      a.flags[arg] = true;
    } else {
      HYLO_CHECK(i + 1 < argc, "missing value for --" << arg);
      a.kv[arg] = argv[++i];
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hylo;
  const Args args = parse(argc, argv);

  const std::string model = args.get("model", "resnet32");
  const std::string optimizer = args.get("optimizer", "HyLo");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.geti("seed", 42));

  // Dataset + model pairing.
  DataSplit data;
  Network net;
  if (model == "mlp") {
    data = make_spirals(1536, 384, 3, 0.05, seed);
    net = make_mlp({2, 1, 1}, {64, 64}, 3, seed);
  } else if (model == "c3f1") {
    data = make_gaussian_images(1536, 384, 10, 1, 16, 16, 0.9, seed);
    net = make_c3f1({1, 16, 16}, 10, 8, seed);
  } else if (model == "resnet32") {
    data = make_texture_images(1536, 384, 10, 3, 16, 16, 1.3, seed);
    net = make_resnet({3, 16, 16}, 10, 2, 8, seed);
  } else if (model == "resnet50") {
    data = make_texture_images(1536, 384, 10, 3, 16, 16, 1.2, seed);
    net = make_resnet({3, 16, 16}, 10, 2, 12, seed);
  } else if (model == "densenet") {
    data = make_texture_images(1536, 384, 10, 3, 16, 16, 0.4, seed);
    net = make_densenet({3, 16, 16}, 10, 8, 4, seed);
  } else if (model == "unet") {
    data = make_blob_segmentation(512, 128, 16, 16, 0.25, seed);
    net = make_unet({1, 16, 16}, 8, 2, seed);
  } else {
    std::cerr << "unknown --model " << model << "\n";
    return 1;
  }

  OptimConfig oc;
  oc.lr = args.getd("lr", optimizer == "ADAM" ? 0.002 : 0.1);
  oc.momentum = 0.9;
  oc.weight_decay = args.getd("weight-decay", 5e-4);
  oc.damping = args.getd("damping", 0.3);
  oc.update_freq = args.geti("freq", 10);
  oc.rank_ratio = args.getd("rank-ratio", 0.1);
  oc.kl_clip = args.getd("kl-clip", 0.01);
  auto opt = make_optimizer(optimizer, oc);

  TrainConfig tc;
  tc.epochs = args.geti("epochs", 8);
  tc.batch_size = args.geti("batch", 16);
  tc.world = args.geti("world", 1);
  tc.max_iters_per_epoch = args.geti("max-iters", -1);
  tc.target_metric = args.getd("target", -1.0);
  tc.wire_scalar_bytes = args.getd("wire-bytes", 4.0);
  tc.lr_schedule = {{tc.epochs * 2 / 3}, 0.1};
  tc.verbose = true;
  tc.telemetry.dir = args.get("telemetry", "");
  tc.telemetry.per_step = !args.has("no-step-log");
  const std::string net_name = args.get("interconnect", "mist");
  tc.interconnect = net_name == "mist" ? mist_v100()
                    : net_name == "p2" ? aws_p2_k80()
                                       : loopback();
  if (const std::string spec = args.get("faults", ""); !spec.empty())
    tc.faults = FaultConfig::parse(spec);
  tc.checkpoint.dir = args.get("checkpoint-dir", "");
  tc.checkpoint.every = args.geti("checkpoint-every", 0);
  tc.checkpoint.keep = args.geti("checkpoint-keep", 3);
  if (const std::string spec = args.get("recover", ""); !spec.empty())
    tc.recovery = RecoveryConfig::parse(spec);
  const bool strict_health = args.has("strict-health");
  if (args.has("health") || strict_health ||
      args.kv.count("health-cadence") > 0) {
    obs::HealthConfig hc;
    hc.enabled = true;
    hc.cadence = args.geti("health-cadence", 1);
    tc.health = hc;
  }
  const std::string resume_path = args.get("resume", "");
  if (!resume_path.empty()) tc.telemetry.append = true;

  std::cout << "hylo_train: " << model << " (" << net.num_params()
            << " params) + " << opt->name() << ", P=" << tc.world
            << ", batch=" << tc.batch_size << "/worker, wire="
            << tc.wire_scalar_bytes << "B/scalar\n";
  Trainer trainer(net, *opt, data, tc);
  if (!resume_path.empty())
    std::cout << "resuming from " << resume_path << "\n";
  const TrainResult res =
      resume_path.empty() ? trainer.run() : trainer.resume(resume_path);

  std::cout << "\nbest metric " << res.best_metric() << ", simulated time "
            << res.total_seconds << "s (" << res.compute_seconds
            << " parallel-compute + " << res.replicated_seconds
            << " replicated + " << res.comm_seconds << " comm)\n";
  if (res.time_to_target)
    std::cout << "reached target in " << *res.time_to_target << "s / "
              << *res.epochs_to_target << " epochs\n";
  if (trainer.run_log().enabled()) {
    std::cout << "telemetry: " << trainer.run_log().run_log_path() << " ("
              << trainer.run_log().records_written() << " records), "
              << trainer.run_log().trace_path()
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n"
              << "wire totals: " << trainer.comm().total_wire_bytes()
              << " bytes over " << trainer.comm().total_messages()
              << " collectives\n";
  }

  if (trainer.comm().faults_active()) {
    auto& reg = trainer.comm().profiler().registry();
    std::cout << "faults: " << reg.counter_value("comm/faults/injected")
              << " injected over " << trainer.comm().fault_plan()->drawn()
              << " collectives ("
              << reg.counter_value("comm/faults/unrecoverable")
              << " unrecoverable)\n";
    if (reg.counter_value("dist/elastic/world_shrinks") > 0)
      std::cout << "elastic: "
                << reg.counter_value("dist/elastic/world_shrinks")
                << " rank(s) lost permanently, "
                << reg.counter_value("dist/elastic/layer_migrations")
                << " layer migrations, final world " << trainer.world()
                << "\n";
  }
  if (trainer.checkpoint_config().enabled())
    std::cout << "snapshots: every " << trainer.checkpoint_config().every
              << " iterations under " << trainer.checkpoint_config().dir
              << " (keep " << trainer.checkpoint_config().keep << ")\n";
  if (trainer.recovery().enabled())
    std::cout << "recovery: " << res.rollbacks << " rollback(s) of a budget "
              << trainer.recovery().config().max_rollbacks << ", last good "
              << (trainer.last_good_snapshot().empty()
                      ? "(none)"
                      : trainer.last_good_snapshot())
              << "\n";
  if (args.has("profiling")) {
    std::cout << "\nprofile:\n";
    for (const auto& [name, e] : trainer.profiler().sections())
      std::cout << "  " << name << ": " << e.seconds << "s x" << e.calls
                << "\n";
  }
  if (auto* hy = dynamic_cast<HyloOptimizer*>(opt.get()); hy != nullptr) {
    if (args.has("grad-norm")) {
      std::cout << "\ndelta-norm history:";
      for (const auto n : hy->delta_norm_history()) std::cout << " " << n;
      std::cout << "\nmodes:";
      for (const auto m : hy->mode_history())
        std::cout << " " << (m == HyloMode::kKid ? "KID" : "KIS");
      std::cout << "\n";
    }
    if (args.has("rank-analysis"))
      std::cout << "low rank at last refresh: " << hy->last_rank() << "\n";
  }
  if (const std::string ckpt = args.get("checkpoint", ""); !ckpt.empty()) {
    net.save_weights(ckpt);
    std::cout << "weights saved to " << ckpt << "\n";
  }
  if (trainer.health().enabled()) {
    std::cout << trainer.alerts().summary() << "\n"
              << "health: " << trainer.health().probes() << " probe(s), "
              << trainer.health().total_nonfinite()
              << " non-finite value(s) observed\n";
    if (strict_health && res.critical_alerts > 0) {
      std::cout << "strict-health: " << res.critical_alerts
                << " critical alert(s) — failing the run\n";
      return 3;
    }
  }
  return 0;
}
