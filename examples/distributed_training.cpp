// Distributed-training example: run HyLo on 8 simulated workers over the
// V100-cluster interconnect model, and inspect everything the simulator
// tracks — the KID/KIS switching schedule, the computation/communication
// profile, per-collective wire bytes, and the low rank actually used. With
// telemetry on, the run also writes hylo_distributed_run/run.jsonl and a
// Chrome-trace timeline (hylo_distributed_run/trace.json) where the 8 rank
// tracks interleave with the modeled collectives on the interconnect lane.
//
//   $ ./examples/distributed_training
#include <iomanip>
#include <iostream>

#include "hylo/hylo.hpp"

int main() {
  using namespace hylo;

  const index_t world = 8;
  const DataSplit data =
      make_texture_images(1536, 384, 10, 3, 16, 16, 1.2, 51);
  Network net = make_resnet({3, 16, 16}, 10, 2, 12, 42);

  OptimConfig oc;
  oc.lr = 0.1;
  oc.momentum = 0.9;
  oc.weight_decay = 5e-4;
  oc.damping = 0.3;
  oc.update_freq = 5;
  oc.rank_ratio = 0.1;
  oc.kl_clip = 0.01;
  HyloOptimizer opt(oc);

  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 8;  // local batch m; global batch = P*m = 64
  tc.world = world;
  tc.interconnect = mist_v100();
  tc.lr_schedule = {{4}, 0.1};
  tc.telemetry.dir = "hylo_distributed_run";  // run.jsonl + trace.json
  Trainer trainer(net, opt, data, tc);

  std::cout << "Training " << net.name() << " on " << world
            << " simulated workers (" << tc.interconnect.name
            << " interconnect), global batch " << world * tc.batch_size
            << "\n\n";
  trainer.set_epoch_hook([](const EpochStats& s, Network&) {
    std::cout << "  epoch " << s.epoch << " [" << s.note << "]: test acc "
              << s.test_metric << ", sim wall " << s.wall_seconds << "s\n";
  });
  const TrainResult res = trainer.run();

  std::cout << "\nLow rank used at the last refresh: r = " << opt.last_rank()
            << " (" << 100.0 * oc.rank_ratio << "% of the global batch)\n";
  std::cout << "Optimizer state: " << opt.state_bytes() / 1024 << " KiB\n";

  std::cout << "\nSimulated time decomposition:\n"
            << "  parallel compute (fwd/bwd + factor + invert): "
            << res.compute_seconds << "s\n"
            << "  replicated compute (precondition + update):   "
            << res.replicated_seconds << "s\n"
            << "  modeled communication:                        "
            << res.comm_seconds << "s\n";

  std::cout << "\nProfiler sections (comp/* measured, comm/* modeled):\n";
  for (const auto& [name, entry] : trainer.profiler().sections())
    std::cout << "  " << std::left << std::setw(28) << name << " "
              << std::setw(12) << entry.seconds << "s  x" << entry.calls
              << "\n";

  std::cout << "\nWire accounting (modeled payload bytes per collective):\n";
  for (const auto& [name, entry] : trainer.profiler().sections()) {
    if (name.rfind("comm/", 0) != 0) continue;
    std::cout << "  " << std::left << std::setw(28) << name << " "
              << trainer.comm().wire_bytes_charged(name) << " B over "
              << trainer.comm().messages(name) << " calls\n";
  }
  std::cout << "telemetry: " << trainer.run_log().run_log_path() << ", "
            << trainer.run_log().trace_path()
            << " (load in https://ui.perfetto.dev)\n";

  std::cout << "\nSwitching schedule:";
  for (const auto m : opt.mode_history())
    std::cout << " " << (m == HyloMode::kKid ? "KID" : "KIS");
  std::cout << "\n(critical epochs — warmup and post-LR-decay — use KID; "
               "stable epochs use the cheaper KIS)\n";
  return 0;
}
