// Image-classification example: train a CIFAR-style residual network on the
// noisy-texture dataset with HyLo, and compare against tuned SGD from the
// same initial weights. Demonstrates the model zoo, the LR schedule, HyLo's
// per-epoch KID/KIS switching, and the epoch hook.
//
//   $ ./examples/image_classification
#include <iostream>

#include "hylo/hylo.hpp"

int main() {
  using namespace hylo;

  // 10-class oriented textures, 3x16x16 (a CIFAR-10 stand-in; see
  // DESIGN.md §2 for the substitution rationale).
  const DataSplit data =
      make_texture_images(/*n_train=*/1536, /*n_test=*/384, /*classes=*/10,
                          /*channels=*/3, 16, 16, /*noise=*/1.2, /*seed=*/21);

  const index_t epochs = 8;
  for (const std::string name : {"HyLo", "SGD"}) {
    Network net = make_resnet({3, 16, 16}, 10, /*blocks_per_stage=*/2,
                              /*width=*/12, /*seed=*/42);
    std::cout << "\n=== " << name << " on " << net.name() << " ("
              << net.num_params() << " parameters) ===\n";

    OptimConfig oc;
    oc.momentum = 0.9;
    oc.weight_decay = 5e-4;
    if (name == "HyLo") {
      oc.lr = 0.1;
      oc.damping = 0.3;
      oc.update_freq = 10;
      oc.rank_ratio = 0.1;
      oc.kl_clip = 0.01;
    } else {
      oc.lr = 0.1;
    }
    auto opt = make_optimizer(name, oc);

    TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = 32;
    tc.lr_schedule = {{epochs * 2 / 3}, 0.1};
    Trainer trainer(net, *opt, data, tc);
    trainer.set_epoch_hook([&](const EpochStats& s, Network&) {
      std::cout << "  epoch " << s.epoch << ": train acc " << s.train_metric
                << ", test acc " << s.test_metric << ", sim t "
                << s.wall_seconds << "s"
                << (s.note.empty() ? "" : " [" + s.note + "]") << "\n";
    });
    const TrainResult res = trainer.run();
    std::cout << name << " best test accuracy: " << res.best_metric() << "\n";

    if (auto* hy = dynamic_cast<HyloOptimizer*>(opt.get()); hy != nullptr) {
      std::cout << "HyLo mode schedule:";
      for (const auto m : hy->mode_history())
        std::cout << " " << (m == HyloMode::kKid ? "KID" : "KIS");
      std::cout << "\n";
    }
  }
  return 0;
}
