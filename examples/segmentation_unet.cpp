// Binary-segmentation example: a small U-Net on the synthetic lesion-blob
// dataset (the LGG-MRI stand-in), trained with HyLo, evaluated with the
// Dice similarity coefficient. Renders one test prediction as ASCII art so
// you can see what the network learned.
//
//   $ ./examples/segmentation_unet
#include <iostream>

#include "hylo/hylo.hpp"

namespace {
using namespace hylo;

void render(const Tensor4& image, const Tensor4& mask, const Tensor4& logits,
            index_t sample) {
  const index_t h = image.h(), w = image.w();
  auto cell = [](real_t v) {
    const char* shades = " .:-=+*#%@";
    const int idx = std::clamp(static_cast<int>((v + 1.0) * 4.5), 0, 9);
    return shades[idx];
  };
  std::cout << "\n  input                  truth                  "
               "prediction\n";
  for (index_t y = 0; y < h; ++y) {
    std::cout << "  ";
    for (index_t x = 0; x < w; ++x)
      std::cout << cell(image.at(sample, 0, y, x));
    std::cout << "   ";
    for (index_t x = 0; x < w; ++x)
      std::cout << (mask.at(sample, 0, y, x) > 0.5 ? '#' : '.');
    std::cout << "   ";
    for (index_t x = 0; x < w; ++x)
      std::cout << (logits.at(sample, 0, y, x) > 0.0 ? '#' : '.');
    std::cout << "\n";
  }
}
}  // namespace

int main() {
  using namespace hylo;

  const DataSplit data = make_blob_segmentation(/*n_train=*/512,
                                                /*n_test=*/64, 16, 16,
                                                /*noise=*/0.25, /*seed=*/31);
  Network net = make_unet({1, 16, 16}, /*base_channels=*/8, /*depth=*/2,
                          /*seed=*/77);
  std::cout << "U-Net with " << net.num_params() << " parameters, "
            << net.param_blocks().size() << " preconditionable layers\n";

  OptimConfig oc;
  oc.lr = 0.1;
  oc.momentum = 0.9;
  oc.damping = 0.3;
  oc.update_freq = 10;
  oc.rank_ratio = 0.1;
  oc.kl_clip = 0.01;
  HyloOptimizer opt(oc);

  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.lr_schedule = {{6}, 0.1};
  Trainer trainer(net, opt, data, tc);
  trainer.set_epoch_hook([](const EpochStats& s, Network&) {
    std::cout << "  epoch " << s.epoch << ": loss " << s.train_loss
              << ", test Dice " << s.test_metric
              << (s.note.empty() ? "" : " [" + s.note + "]") << "\n";
  });
  const TrainResult res = trainer.run();
  std::cout << "Best test Dice: " << res.best_metric()
            << " (paper's LGG U-Net target: 0.91)\n";

  // Visualize one held-out prediction.
  Tensor4 batch(4, 1, 16, 16);
  Tensor4 masks(4, 1, 16, 16);
  for (index_t i = 0; i < 4; ++i) {
    std::copy(data.test.images.sample_ptr(i),
              data.test.images.sample_ptr(i) + 256, batch.sample_ptr(i));
    std::copy(data.test.masks.sample_ptr(i),
              data.test.masks.sample_ptr(i) + 256, masks.sample_ptr(i));
  }
  const PassContext eval{.training = false, .capture = false};
  const Tensor4& logits = net.forward(batch, eval);
  render(batch, masks, logits, 0);
  render(batch, masks, logits, 1);
  return 0;
}
